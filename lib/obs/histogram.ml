(* DDSketch-style log-bucketed histogram (see histogram.mli for the
   contract). Bucket i covers (gamma^(i-1), gamma^i]; with
   gamma = (1+alpha)/(1-alpha) the midpoint-in-log-space representative
   2*gamma^i/(gamma+1) is within alpha of every value in the bucket. *)

let default_alpha = 0.01
let min_trackable = 1e-9
let max_trackable = 1e15

type t = {
  name : string;
  alpha : float;
  log_gamma : float;
  lo : int; (* absolute index of the lowest tracked bucket *)
  buckets : int Atomic.t array; (* absolute index i lives at buckets.(i - lo) *)
  zero : int Atomic.t; (* values <= 0 *)
  count : int Atomic.t;
  sum : float Atomic.t;
  minv : float Atomic.t;
  maxv : float Atomic.t;
}

let log_gamma_of alpha = Float.log ((1.0 +. alpha) /. (1.0 -. alpha))

let bucket_of_value ~alpha v =
  int_of_float (Float.ceil (Float.log v /. log_gamma_of alpha))

let value_of_bucket ~alpha i =
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  2.0 *. (gamma ** float_of_int i) /. (gamma +. 1.0)

let create ?(alpha = default_alpha) name =
  if not (alpha > 0.0005 && alpha < 0.5) then
    invalid_arg "Obs.Histogram: alpha must be in (0.0005, 0.5)";
  let log_gamma = log_gamma_of alpha in
  let lo = int_of_float (Float.floor (Float.log min_trackable /. log_gamma)) in
  let hi = int_of_float (Float.ceil (Float.log max_trackable /. log_gamma)) + 1 in
  {
    name;
    alpha;
    log_gamma;
    lo;
    buckets = Array.init (hi - lo + 1) (fun _ -> Atomic.make 0);
    zero = Atomic.make 0;
    count = Atomic.make 0;
    sum = Atomic.make 0.0;
    minv = Atomic.make infinity;
    maxv = Atomic.make neg_infinity;
  }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mu = Mutex.create ()

let make ?alpha name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h = create ?alpha name in
          Hashtbl.add registry name h;
          h)

let name h = h.name
let alpha h = h.alpha
let count h = Atomic.get h.count

(* CAS loops over boxed float atomics: compare_and_set is on the box, so
   read-modify-write retries until no concurrent writer interleaved. *)
let rec add_float cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then add_float cell x

let rec update_min cell x =
  let old = Atomic.get cell in
  if x < old && not (Atomic.compare_and_set cell old x) then update_min cell x

let rec update_max cell x =
  let old = Atomic.get cell in
  if x > old && not (Atomic.compare_and_set cell old x) then update_max cell x

let record h v =
  if not (Float.is_nan v) then begin
    ignore (Atomic.fetch_and_add h.count 1);
    add_float h.sum v;
    update_min h.minv v;
    update_max h.maxv v;
    if v <= 0.0 then ignore (Atomic.fetch_and_add h.zero 1)
    else begin
      let slot =
        if v <= min_trackable then 0
        else if v >= max_trackable then Array.length h.buckets - 1
        else
          let i = int_of_float (Float.ceil (Float.log v /. h.log_gamma)) - h.lo in
          if i < 0 then 0
          else if i >= Array.length h.buckets then Array.length h.buckets - 1
          else i
      in
      ignore (Atomic.fetch_and_add h.buckets.(slot) 1)
    end
  end

let record_ns h ns = record h (Int64.to_float ns)

type snapshot = {
  hist_name : string;
  hist_alpha : float;
  hist_count : int;
  hist_sum : float;
  hist_min : float;
  hist_max : float;
  hist_zero : int;
  hist_buckets : (int * int) list;
}

let snapshot_of h =
  let buckets = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    let c = Atomic.get h.buckets.(i) in
    if c > 0 then buckets := (h.lo + i, c) :: !buckets
  done;
  {
    hist_name = h.name;
    hist_alpha = h.alpha;
    hist_count = Atomic.get h.count;
    hist_sum = Atomic.get h.sum;
    hist_min = Atomic.get h.minv;
    hist_max = Atomic.get h.maxv;
    hist_zero = Atomic.get h.zero;
    hist_buckets = !buckets;
  }

let snapshot () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.fold (fun _ h acc -> snapshot_of h :: acc) registry [])
  |> List.sort (fun a b -> compare a.hist_name b.hist_name)

let merge a b =
  if a.hist_alpha <> b.hist_alpha then
    invalid_arg "Obs.Histogram.merge: alpha mismatch (buckets do not align)";
  let rec merge_buckets xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (i, ci) :: xt, (j, cj) :: yt ->
        if i < j then (i, ci) :: merge_buckets xt ys
        else if j < i then (j, cj) :: merge_buckets xs yt
        else (i, ci + cj) :: merge_buckets xt yt
  in
  {
    hist_name = a.hist_name;
    hist_alpha = a.hist_alpha;
    hist_count = a.hist_count + b.hist_count;
    hist_sum = a.hist_sum +. b.hist_sum;
    hist_min = Float.min a.hist_min b.hist_min;
    hist_max = Float.max a.hist_max b.hist_max;
    hist_zero = a.hist_zero + b.hist_zero;
    hist_buckets = merge_buckets a.hist_buckets b.hist_buckets;
  }

let quantile_of s q =
  (* Concurrent recording can leave hist_count ahead of the bucket total
     (count is bumped before the bucket); rank against what the buckets
     actually hold so the walk always terminates in a real bucket. *)
  let tallied =
    s.hist_zero + List.fold_left (fun acc (_, c) -> acc + c) 0 s.hist_buckets
  in
  if tallied <= 0 then nan
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int tallied)) in
      if r < 1 then 1 else if r > tallied then tallied else r
    in
    if rank <= s.hist_zero then
      (* Underflow bucket: all values <= 0; min is exact for the smallest. *)
      if s.hist_min < 0.0 then s.hist_min else 0.0
    else begin
      let rec walk cum = function
        | [] -> s.hist_max
        | (i, c) :: rest ->
            let cum = cum + c in
            if cum >= rank then value_of_bucket ~alpha:s.hist_alpha i else walk cum rest
      in
      let est = walk s.hist_zero s.hist_buckets in
      (* Clamping to the observed range can only move the estimate toward
         the true quantile, so the alpha bound survives. *)
      Float.max s.hist_min (Float.min s.hist_max est)
    end
  end

let quantile h q = quantile_of (snapshot_of h) q

let mean_of s =
  if s.hist_count = 0 then nan else s.hist_sum /. float_of_int s.hist_count

let reset_all () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun c -> Atomic.set c 0) h.buckets;
          Atomic.set h.zero 0;
          Atomic.set h.count 0;
          Atomic.set h.sum 0.0;
          Atomic.set h.minv infinity;
          Atomic.set h.maxv neg_infinity)
        registry)
