(** Named monotone counters for solver internals (pivots, nodes,
    backtracks, probes, …).

    Counters are process-global atomics: they count whether or not the
    event sink is enabled, so cheap aggregate telemetry (the advisor's
    per-search counter deltas, the bench per-section reports) costs one
    [fetch_and_add] per update and needs no tracing session. Hot loops
    should accumulate locally and flush once per solve — every kernel in
    this repo does. *)

type t

val make : string -> t
(** Idempotent: the same name always returns the same counter, so
    module-level [make] in two libraries cannot double-register. *)

val add : t -> int -> unit
(** Atomic; safe from any domain. [add c 0] is a no-op. *)

val incr : t -> unit
val value : t -> int
val name : t -> string

val snapshot : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val delta : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-name difference of two {!snapshot}s, zero entries omitted — the
    cost of one region of work (e.g. a single advisor search). *)

val reset_all : unit -> unit
(** Zero every counter (test isolation). *)
