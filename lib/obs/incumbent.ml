type t = {
  name : string;
  mu : Mutex.t;
  mutable best : float;
  mutable series : (int64 * float) list; (* newest first *)
}

let stream name = { name; mu = Mutex.create (); best = infinity; series = [] }

let observe s cost =
  Mutex.protect s.mu (fun () ->
      if cost < s.best then begin
        s.best <- cost;
        s.series <- (Clock.now_ns (), cost) :: s.series;
        Sink.record (Event.Incumbent { stream = s.name; cost });
        true
      end
      else false)

let best s = Mutex.protect s.mu (fun () -> s.best)
let series s = Mutex.protect s.mu (fun () -> List.rev s.series)
let name s = s.name

(* Series re-based to seconds since the stream's first observation — the
   (time, best-cost) curve the paper's anytime figures plot. *)
let curve s =
  match series s with
  | [] -> []
  | (t0, _) :: _ as points ->
      List.map (fun (t, c) -> (Clock.ns_to_s (Int64.sub t t0), c)) points
