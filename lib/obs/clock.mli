(** Monotonic time source for every telemetry timestamp.

    Backed by [clock_gettime(CLOCK_MONOTONIC)], so timestamps never move
    backwards and differences are real elapsed durations — wall-clock
    (NTP-adjusted) time would break span nesting and incumbent ordering. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary fixed origin (boot on Linux). Only
    differences between two readings are meaningful. *)

val now_s : unit -> float
(** {!now_ns} in seconds — the drop-in replacement for the
    [Unix.gettimeofday] deadline idiom ([start +. budget] comparisons)
    everywhere outside [lib/obs] and [bench/], where wall-clock jumps
    would corrupt solver budgets (enforced by [tools/repolint] rule
    R001). Same caveat: only differences are meaningful. *)

val ns_to_us : int64 -> float
val ns_to_ms : int64 -> float
val ns_to_s : int64 -> float
