type t = {
  name : string;
  cell : float Atomic.t;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mu = Mutex.create ()

let make name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some g -> g
      | None ->
          let g = { name; cell = Atomic.make 0.0 } in
          Hashtbl.add registry name g;
          g)

let set g v = Atomic.set g.cell v
let value g = Atomic.get g.cell
let name g = g.name

let snapshot () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.fold (fun name g acc -> (name, Atomic.get g.cell) :: acc) registry [])
  |> List.sort compare

let reset_all () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.iter (fun _ g -> Atomic.set g.cell 0.0) registry)
