(** Timestamped best-cost-so-far streams — the anytime curves of the
    paper's convergence figures (best solution vs. wall-clock time).

    A stream accepts any sequence of observed costs and keeps only the
    strictly improving prefix-minima, each stamped with the monotonic
    clock. Observations are mutex-protected so several portfolio workers
    can feed one stream. Each improvement additionally emits an
    {!Event.Incumbent} into the sink when tracing is enabled, so traces
    show exactly when each solver pulled ahead. *)

type t

val stream : string -> t
(** A fresh stream (best = ∞). Deliberately {e not} registered globally:
    each solve owns its stream, so back-to-back solves never mask each
    other's improvements. The name only labels emitted events. *)

val observe : t -> float -> bool
(** Record a candidate cost; [true] iff it strictly improved the best so
    far (and was therefore kept and emitted). Thread-safe. *)

val best : t -> float
(** Current best, [infinity] before any observation. *)

val series : t -> (int64 * float) list
(** Improvements oldest-first as (absolute monotonic ns, cost); costs are
    strictly decreasing, timestamps non-decreasing. *)

val curve : t -> (float * float) list
(** {!series} re-based to seconds since the first observation. *)

val name : t -> string
