/* Monotonic clock for the observability library.

   CLOCK_MONOTONIC never jumps backwards under NTP adjustments, which is
   what span durations and incumbent timestamps need; Unix.gettimeofday
   (wall clock) does not give that guarantee. Falls back to the realtime
   clock on platforms without a monotonic one. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <stdint.h>

CAMLprim value obs_clock_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
