type payload =
  | Span_begin of string
  | Span_end of string
  | Incumbent of { stream : string; cost : float }
  | Mark of string

type t = {
  t_ns : int64;
  domain : int;
  payload : payload;
}

let name t =
  match t.payload with
  | Span_begin n | Span_end n | Mark n -> n
  | Incumbent { stream; _ } -> stream
