type payload =
  | Span_begin of string
  | Span_end of string
  | Incumbent of { stream : string; cost : float }
  | Mark of string
  | Gc_delta of {
      span : string;
      minor_words : float;
      major_words : float;
      promoted_words : float;
      heap_words : int;
      compactions : int;
    }

type t = {
  t_ns : int64;
  domain : int;
  payload : payload;
}

let name t =
  match t.payload with
  | Span_begin n | Span_end n | Mark n -> n
  | Incumbent { stream; _ } -> stream
  | Gc_delta { span; _ } -> span
