type t = {
  name : string;
  cell : int Atomic.t;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let registry_mu = Mutex.create ()

let make name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { name; cell = Atomic.make 0 } in
          Hashtbl.add registry name c;
          c)

let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let value c = Atomic.get c.cell
let name c = c.name

let snapshot () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) registry [])
  |> List.sort compare

(* Per-name difference of two snapshots, names present in [after] only
   counted from zero; zero deltas omitted. *)
let delta ~before ~after =
  List.filter_map
    (fun (name, v) ->
      let b = match List.assoc_opt name before with Some b -> b | None -> 0 in
      if v - b <> 0 then Some (name, v - b) else None)
    after

let reset_all () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry)
