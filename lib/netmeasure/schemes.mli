(** Pairwise mean-latency measurement schemes (Sect. 5 of the paper).

    Three organizations of the same task — estimate the full n×n mean RTT
    matrix of an allocation:

    - {b Token passing}: a unique token serializes all probes, so no two
      messages are ever in flight together. Interference-free but serial:
      measurement time grows as n² × samples.
    - {b Uncoordinated}: every instance independently probes a random
      destination each round. Fully parallel, but probes collide — several
      sources may pick one destination, and a replying instance may also be
      sending — inflating observed RTTs unevenly across links.
    - {b Staged}: a coordinator partitions instances into disjoint pairs
      each stage and each pair {e exchanges} [ks] consecutive probes.
      Parallel (n/2 probes in flight) yet interference-free, because no
      instance is ever in more than one conversation. Each successful
      exchange yields a sample for {e both} ordered directions — the reply
      leg of the same packet exchange measures j→i — so a pair matched in
      only one order is still covered in both.

    The interference model: a probe's observed RTT is the pair's jittered
    RTT plus an additive queueing delay of 0.30 ms per extra probe
    converging on the destination, plus 0.05 ms when the destination is
    itself mid-probe. Token passing and staged never trigger either term,
    matching the paper's design goal of measuring links "without
    interference"; uncoordinated accumulates a per-link bias that does not
    average out (the Fig. 4 effect).

    {b Robustness.} Every scheme probes through {!Cloudsim.Env.probe}, so
    an environment carrying a fault plan ({!Cloudsim.Env.with_faults})
    loses probes, inflates straggler RTTs past the timeout, and silences
    crashed instances. Probes are retried up to [retries] times with
    exponential backoff; a lost or late probe charges the full timeout to
    the sender's clock, so [sim_seconds] stays honest under faults. With
    no fault plan the schemes are bit-identical (means, samples,
    [sim_seconds], PRNG stream) to the fault-oblivious implementation.

    Counters: [netmeasure.probes] (recorded samples),
    [netmeasure.probes_lost] (probes dropped in flight or answered by no
    one), [netmeasure.timeouts] (attempts that charged a timeout — losses
    plus late replies), [netmeasure.retries] (re-attempts after a
    timeout). All are flushed once per scheme run. *)

type t = {
  means : float array array;   (** measured mean RTT per ordered pair (ms);
                                   [nan] where a pair was never sampled *)
  samples : int array array;   (** per-pair sample counts *)
  sim_seconds : float;         (** simulated wall-clock cost of measuring,
                                   including timeouts and backoff waits *)
}

type robustness = {
  timeout_ms : float;  (** per-probe reply deadline; a slower reply is
                           discarded and charged as a timeout *)
  retries : int;       (** extra attempts after the first timeout *)
  backoff_ms : float;  (** wait before retry [k] is [backoff_ms · 2^(k-1)] *)
}

val default_robustness : robustness
(** 10 ms timeout, 3 retries, 0.5 ms initial backoff. The timeout clears
    every fault-free RTT this simulator produces, so enabling robustness
    without a fault plan changes nothing. *)

val token_passing :
  ?robustness:robustness -> Prng.t -> Cloudsim.Env.t -> samples_per_pair:int -> t
(** Visit every ordered pair round-robin, [samples_per_pair] times. A
    crashed sender's turn is skipped (the token still hops past it). *)

val uncoordinated :
  ?robustness:robustness -> Prng.t -> Cloudsim.Env.t -> rounds:int -> t
(** [rounds] rounds in which every instance probes one uniformly random
    other instance. Colliding probes are inflated per the model above;
    the timeout applies to the inflated RTT. Crashed instances stop
    sending (and stop colliding) but still consume their destination
    draw, keeping the stream layout seed-stable. *)

val staged :
  ?robustness:robustness -> Prng.t -> Cloudsim.Env.t -> ks:int -> stages:int -> t
(** [stages] coordinator-chosen random perfect matchings; each matched
    pair exchanges [ks] back-to-back probes per stage, recording both
    directions per successful exchange. The first live endpoint
    initiates; a pair of two crashed instances sits the stage out. *)

val staged_time_for : n:int -> reference_minutes:float -> float
(** Measurement-time budget scaling rule from Sect. 6.2: the staged
    approach probes ⌊n/2⌋ pairs in parallel out of O(n²), so the paper
    adjusts the 5-minute budget for 100 instances linearly:
    [5 · n / 100] minutes. Returned in minutes. *)

val coverage : t -> float
(** Fraction of ordered pairs (i ≠ j) with at least one recorded sample.
    [1.0] when n ≤ 1. The paper's staged scheme aims for full coverage;
    under probe loss this is the statistic the Fig. 4-style comparison
    gates on. *)

val link_vector : t -> float array
(** Flatten the measured means over ordered pairs (i ≠ j), row-major —
    the latency-vector form used for error comparison (Figs. 4–5).
    Unsampled pairs contribute [nan]. *)
