type t = {
  means : float array array;
  samples : int array array;
  sim_seconds : float;
}

type robustness = {
  timeout_ms : float;
  retries : int;
  backoff_ms : float;
}

(* The timeout must clear any honest RTT (core-tier mean ≈ 0.7 ms times
   the lognormal jitter tail) so that a fault-free run never discards a
   probe — that is what keeps the zero-fault path bit-identical — while
   still catching straggler-inflated spikes an order of magnitude out. *)
let default_robustness = { timeout_ms = 10.0; retries = 3; backoff_ms = 0.5 }

(* Interference delays in milliseconds (see the interface comment): each
   extra probe converging on the destination adds a queueing delay, and a
   destination that is itself mid-probe replies late. These are additive
   biases, not noise — they do not average out with more samples, which is
   why the paper finds uncoordinated measurement persistently inaccurate
   (Fig. 4): fast links are distorted proportionally more than slow ones,
   changing the shape of the normalized latency vector. *)
let collision_delay_ms = 0.30
let busy_sender_delay_ms = 0.05

(* Probe sums accumulate in one flat off-heap buffer (the GC never scans
   it, and a probe's read-modify-write touches a single cache line);
   counts use a flat int array with the same row-major indexing. *)
type accumulator = {
  n : int;
  sums : Lat_matrix.t;
  counts : int array;
  mutable clock_ms : float;
  mutable lost : int;
  mutable retried : int;
  mutable timed_out : int;
}

let make_acc n =
  {
    n;
    sums = Lat_matrix.create n;
    counts = Array.make (max 1 (n * n)) 0;
    clock_ms = 0.0;
    lost = 0;
    retried = 0;
    timed_out = 0;
  }

(* Per-probe RTT distribution across every scheme — a value histogram,
   always on like the counters: the percentile shape (not the mean) is
   what distinguishes interference-inflated links. *)
let h_rtt = Obs.Histogram.make "netmeasure.rtt_ms"

let record acc i j rtt =
  Lat_matrix.add acc.sums i j rtt;
  Obs.Histogram.record h_rtt rtt;
  let k = (i * acc.n) + j in
  acc.counts.(k) <- acc.counts.(k) + 1

(* Total probes sent by a scheme run; flushed once when its accumulator is
   finalized, so the per-probe loop stays free of atomic traffic. The
   fault counters follow the same pattern: tallied in plain mutable fields
   and flushed in [finish]. *)
let c_probes = Obs.Counter.make "netmeasure.probes"
let c_lost = Obs.Counter.make "netmeasure.probes_lost"
let c_retries = Obs.Counter.make "netmeasure.retries"
let c_timeouts = Obs.Counter.make "netmeasure.timeouts"

let finish acc =
  Obs.Counter.add c_probes (Array.fold_left ( + ) 0 acc.counts);
  if acc.lost > 0 then Obs.Counter.add c_lost acc.lost;
  if acc.retried > 0 then Obs.Counter.add c_retries acc.retried;
  if acc.timed_out > 0 then Obs.Counter.add c_timeouts acc.timed_out;
  let n = acc.n in
  let count i j = acc.counts.((i * n) + j) in
  let means =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0.0
            else if count i j = 0 then nan
            else Lat_matrix.unsafe_get acc.sums i j /. float_of_int (count i j)))
  in
  let samples = Array.init n (fun i -> Array.init n (fun j -> count i j)) in
  { means; samples; sim_seconds = acc.clock_ms /. 1000.0 }

(* One measurement with bounded retries. Returns the observed RTT (after
   [inflate], which models receiver-side interference) and the sender's
   elapsed wall-clock: a reply costs its RTT; a lost probe, a crashed
   destination or a reply slower than the timeout all cost the full
   timeout, plus exponential backoff between attempts. On the fault-free
   path [Env.probe] is exactly [sample_rtt], every reply beats the
   timeout, and the accounting collapses to [elapsed = rtt] with zero
   extra PRNG draws — bit-identical to the pre-fault implementation. *)
let probe_with_retries ?(inflate = fun rtt -> rtt) acc rob rng env ~at_ms i j =
  let rec attempt k ~elapsed =
    match Cloudsim.Env.probe rng env ~at_ms:(at_ms +. elapsed) i j with
    | Cloudsim.Env.Reply rtt when inflate rtt <= rob.timeout_ms ->
        let rtt = inflate rtt in
        (Some rtt, elapsed +. rtt)
    | outcome ->
        (match outcome with
        | Cloudsim.Env.Lost -> acc.lost <- acc.lost + 1
        | Cloudsim.Env.Reply _ -> () (* late reply: discarded, not lost *));
        acc.timed_out <- acc.timed_out + 1;
        let elapsed = elapsed +. rob.timeout_ms in
        if k > rob.retries then (None, elapsed)
        else begin
          acc.retried <- acc.retried + 1;
          let backoff = rob.backoff_ms *. float_of_int (1 lsl (k - 1)) in
          attempt (k + 1) ~elapsed:(elapsed +. backoff)
        end
  in
  attempt 1 ~elapsed:0.0

let check_robustness rob =
  if not (rob.timeout_ms > 0.0) then
    invalid_arg "Schemes: probe timeout must be positive";
  if rob.retries < 0 then invalid_arg "Schemes: retry budget must be non-negative";
  if rob.backoff_ms < 0.0 then invalid_arg "Schemes: backoff must be non-negative"

let token_passing ?(robustness = default_robustness) rng env ~samples_per_pair =
  if samples_per_pair <= 0 then invalid_arg "Schemes.token_passing: need positive sample count";
  check_robustness robustness;
  Obs.Span.with_ "netmeasure.token_passing" @@ fun () ->
  let n = Cloudsim.Env.count env in
  let acc = make_acc n in
  (* Token pass itself costs one one-way message; model as half the mean
     RTT between consecutive pair owners. We charge a flat small cost. *)
  let token_cost = 0.1 in
  for _ = 1 to samples_per_pair do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          if not (Cloudsim.Env.alive env ~at_ms:acc.clock_ms i) then
            (* A dead token holder is skipped; forwarding still costs. *)
            acc.clock_ms <- acc.clock_ms +. token_cost
          else begin
            let result, elapsed =
              probe_with_retries acc robustness rng env ~at_ms:acc.clock_ms i j
            in
            (match result with Some rtt -> record acc i j rtt | None -> ());
            acc.clock_ms <- acc.clock_ms +. elapsed +. token_cost
          end
      done
    done
  done;
  finish acc

let uncoordinated ?(robustness = default_robustness) rng env ~rounds =
  if rounds <= 0 then invalid_arg "Schemes.uncoordinated: need positive rounds";
  check_robustness robustness;
  Obs.Span.with_ "netmeasure.uncoordinated" @@ fun () ->
  let n = Cloudsim.Env.count env in
  if n < 2 then invalid_arg "Schemes.uncoordinated: need at least two instances";
  let acc = make_acc n in
  let dest = Array.make n 0 in
  let indegree = Array.make n 0 in
  for _ = 1 to rounds do
    Array.fill indegree 0 n 0;
    for i = 0 to n - 1 do
      (* Uniform destination other than self. Crashed senders still draw
         (keeping the stream layout fixed) but send nothing, so they add
         no interference. *)
      let d = Prng.int rng (n - 1) in
      let d = if d >= i then d + 1 else d in
      dest.(i) <- d;
      if Cloudsim.Env.alive env ~at_ms:acc.clock_ms i then
        indegree.(d) <- indegree.(d) + 1
    done;
    let round_max = ref 0.0 in
    for i = 0 to n - 1 do
      if Cloudsim.Env.alive env ~at_ms:acc.clock_ms i then begin
        let d = dest.(i) in
        (* Destination overload: other probes converging on d; plus d is
           itself sending this round (always true in this scheme). The
           inflation is what the sender observes, so the timeout applies
           to the inflated value. *)
        let collisions = float_of_int (indegree.(d) - 1) in
        let inflate base =
          base +. (collision_delay_ms *. collisions) +. busy_sender_delay_ms
        in
        let result, elapsed =
          probe_with_retries ~inflate acc robustness rng env ~at_ms:acc.clock_ms i d
        in
        (match result with Some inflated -> record acc i d inflated | None -> ());
        if elapsed > !round_max then round_max := elapsed
      end
    done;
    (* All probes of a round fly in parallel: the round costs its slowest
       sender — including the timeouts and backoffs of unlucky ones. *)
    acc.clock_ms <- acc.clock_ms +. !round_max
  done;
  finish acc

(* The reverse measurement of an exchange rides the same packets as the
   forward probe, so it sees the same queueing realization: scale the
   observed RTT by the ratio of the two directions' means. No PRNG draw,
   no extra wall-clock — which is also what keeps the forward stream
   bit-identical to the single-direction implementation. *)
let reverse_of env i j rtt =
  let fwd = Cloudsim.Env.mean_latency env i j in
  if fwd > 0.0 then rtt /. fwd *. Cloudsim.Env.mean_latency env j i else rtt

let staged ?(robustness = default_robustness) rng env ~ks ~stages =
  if ks <= 0 || stages <= 0 then invalid_arg "Schemes.staged: need positive ks and stages";
  check_robustness robustness;
  Obs.Span.with_ "netmeasure.staged" @@ fun () ->
  let n = Cloudsim.Env.count env in
  if n < 2 then invalid_arg "Schemes.staged: need at least two instances";
  let acc = make_acc n in
  let coordination_cost = 0.2 in
  for _ = 1 to stages do
    (* The coordinator draws a random perfect matching: shuffle and pair
       consecutive instances (one leftover sits the stage out if n is odd). *)
    let order = Prng.permutation rng n in
    let stage_max = ref 0.0 in
    let p = ref 0 in
    while (2 * !p) + 1 < n do
      let a = order.(2 * !p) and b = order.((2 * !p) + 1) in
      (* The first live endpoint initiates the exchange; if both have
         crashed the pair sits the stage out. A live initiator probing a
         dead partner pays its timeouts like any other loss. *)
      let at = acc.clock_ms in
      let exchange =
        if Cloudsim.Env.alive env ~at_ms:at a then Some (a, b)
        else if Cloudsim.Env.alive env ~at_ms:at b then Some (b, a)
        else None
      in
      (match exchange with
      | None -> ()
      | Some (i, j) ->
          let pair_total = ref 0.0 in
          for _ = 1 to ks do
            let result, elapsed =
              probe_with_retries acc robustness rng env ~at_ms:(at +. !pair_total) i j
            in
            (match result with
            | Some rtt ->
                (* Pairs exchange probes: the same packet exchange yields
                   the reverse direction's sample too, so ordered pairs
                   are never systematically left unsampled. *)
                record acc i j rtt;
                record acc j i (reverse_of env i j rtt)
            | None -> ());
            pair_total := !pair_total +. elapsed
          done;
          if !pair_total > !stage_max then stage_max := !pair_total);
      incr p
    done;
    acc.clock_ms <- acc.clock_ms +. !stage_max +. coordination_cost
  done;
  finish acc

let staged_time_for ~n ~reference_minutes = reference_minutes *. float_of_int n /. 100.0

let coverage t =
  let n = Array.length t.samples in
  if n <= 1 then 1.0
  else begin
    let covered = ref 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && t.samples.(i).(j) > 0 then incr covered
      done
    done;
    float_of_int !covered /. float_of_int (n * (n - 1))
  end

let link_vector t =
  let n = Array.length t.means in
  let out = Array.make (n * (n - 1)) 0.0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        out.(!k) <- t.means.(i).(j);
        incr k
      end
    done
  done;
  out
