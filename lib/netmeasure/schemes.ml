type t = {
  means : float array array;
  samples : int array array;
  sim_seconds : float;
}

(* Interference delays in milliseconds (see the interface comment): each
   extra probe converging on the destination adds a queueing delay, and a
   destination that is itself mid-probe replies late. These are additive
   biases, not noise — they do not average out with more samples, which is
   why the paper finds uncoordinated measurement persistently inaccurate
   (Fig. 4): fast links are distorted proportionally more than slow ones,
   changing the shape of the normalized latency vector. *)
let collision_delay_ms = 0.30
let busy_sender_delay_ms = 0.05

type accumulator = {
  sums : float array array;
  counts : int array array;
  mutable clock_ms : float;
}

let make_acc n =
  { sums = Array.make_matrix n n 0.0; counts = Array.make_matrix n n 0; clock_ms = 0.0 }

let record acc i j rtt =
  acc.sums.(i).(j) <- acc.sums.(i).(j) +. rtt;
  acc.counts.(i).(j) <- acc.counts.(i).(j) + 1

(* Total probes sent by a scheme run; flushed once when its accumulator is
   finalized, so the per-probe loop stays free of atomic traffic. *)
let c_probes = Obs.Counter.make "netmeasure.probes"

let finish acc =
  Obs.Counter.add c_probes
    (Array.fold_left
       (fun a row -> Array.fold_left ( + ) a row)
       0 acc.counts);
  let n = Array.length acc.sums in
  let means =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0.0
            else if acc.counts.(i).(j) = 0 then nan
            else acc.sums.(i).(j) /. float_of_int acc.counts.(i).(j)))
  in
  { means; samples = Array.map Array.copy acc.counts; sim_seconds = acc.clock_ms /. 1000.0 }

let token_passing rng env ~samples_per_pair =
  if samples_per_pair <= 0 then invalid_arg "Schemes.token_passing: need positive sample count";
  Obs.Span.with_ "netmeasure.token_passing" @@ fun () ->
  let n = Cloudsim.Env.count env in
  let acc = make_acc n in
  (* Token pass itself costs one one-way message; model as half the mean
     RTT between consecutive pair owners. We charge a flat small cost. *)
  let token_cost = 0.1 in
  for _ = 1 to samples_per_pair do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          let rtt = Cloudsim.Env.sample_rtt rng env i j in
          record acc i j rtt;
          acc.clock_ms <- acc.clock_ms +. rtt +. token_cost
        end
      done
    done
  done;
  finish acc

let uncoordinated rng env ~rounds =
  if rounds <= 0 then invalid_arg "Schemes.uncoordinated: need positive rounds";
  Obs.Span.with_ "netmeasure.uncoordinated" @@ fun () ->
  let n = Cloudsim.Env.count env in
  if n < 2 then invalid_arg "Schemes.uncoordinated: need at least two instances";
  let acc = make_acc n in
  let dest = Array.make n 0 in
  let indegree = Array.make n 0 in
  for _ = 1 to rounds do
    Array.fill indegree 0 n 0;
    for i = 0 to n - 1 do
      (* Uniform destination other than self. *)
      let d = Prng.int rng (n - 1) in
      let d = if d >= i then d + 1 else d in
      dest.(i) <- d;
      indegree.(d) <- indegree.(d) + 1
    done;
    let round_max = ref 0.0 in
    for i = 0 to n - 1 do
      let d = dest.(i) in
      let base = Cloudsim.Env.sample_rtt rng env i d in
      (* Destination overload: other probes converging on d; plus d is
         itself sending this round (always true in this scheme). *)
      let collisions = float_of_int (indegree.(d) - 1) in
      let inflated =
        base +. (collision_delay_ms *. collisions) +. busy_sender_delay_ms
      in
      record acc i d inflated;
      if inflated > !round_max then round_max := inflated
    done;
    (* All probes of a round fly in parallel: the round costs its slowest. *)
    acc.clock_ms <- acc.clock_ms +. !round_max
  done;
  finish acc

let staged rng env ~ks ~stages =
  if ks <= 0 || stages <= 0 then invalid_arg "Schemes.staged: need positive ks and stages";
  Obs.Span.with_ "netmeasure.staged" @@ fun () ->
  let n = Cloudsim.Env.count env in
  if n < 2 then invalid_arg "Schemes.staged: need at least two instances";
  let acc = make_acc n in
  let coordination_cost = 0.2 in
  for _ = 1 to stages do
    (* The coordinator draws a random perfect matching: shuffle and pair
       consecutive instances (one leftover sits the stage out if n is odd). *)
    let order = Prng.permutation rng n in
    let stage_max = ref 0.0 in
    let p = ref 0 in
    while (2 * !p) + 1 < n do
      let i = order.(2 * !p) and j = order.((2 * !p) + 1) in
      let pair_total = ref 0.0 in
      for _ = 1 to ks do
        let rtt = Cloudsim.Env.sample_rtt rng env i j in
        record acc i j rtt;
        pair_total := !pair_total +. rtt
      done;
      if !pair_total > !stage_max then stage_max := !pair_total;
      incr p
    done;
    acc.clock_ms <- acc.clock_ms +. !stage_max +. coordination_cost
  done;
  finish acc

let staged_time_for ~n ~reference_minutes = reference_minutes *. float_of_int n /. 100.0

let link_vector t =
  let n = Array.length t.means in
  let out = Array.make (n * (n - 1)) 0.0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        out.(!k) <- t.means.(i).(j);
        incr k
      end
    done
  done;
  out
