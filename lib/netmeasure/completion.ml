type provenance = Measured | Reflected | Row_col_max | Missing

type completed = {
  means : float array array;
  provenance : provenance array array;
  imputed : int;
  unresolved : int;
}

let complete (m : Schemes.t) =
  let n = Array.length m.Schemes.means in
  let measured i j = i <> j && m.Schemes.samples.(i).(j) > 0 in
  let means = Array.map Array.copy m.Schemes.means in
  let provenance = Array.make_matrix n n Measured in
  let imputed = ref 0 and unresolved = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && not (measured i j) then
        if measured j i then begin
          (* Asymmetry is small (σ ≈ 0.02 in the simulator, and the paper
             treats links as near-symmetric): the opposite direction is
             the best available estimate. *)
          means.(i).(j) <- m.Schemes.means.(j).(i);
          provenance.(i).(j) <- Reflected;
          incr imputed
        end
        else begin
          (* Conservative fallback: the worst measured latency touching
             either endpoint. Overestimates, never underestimates, so a
             longest-link objective stays an upper bound. *)
          let worst = ref nan in
          let consider a b =
            if measured a b then
              let v = m.Schemes.means.(a).(b) in
              if Float.is_nan !worst || v > !worst then worst := v
          in
          for k = 0 to n - 1 do
            consider i k;
            consider k j
          done;
          if Float.is_nan !worst then begin
            means.(i).(j) <- nan;
            provenance.(i).(j) <- Missing;
            incr unresolved
          end
          else begin
            means.(i).(j) <- !worst;
            provenance.(i).(j) <- Row_col_max;
            incr imputed
          end
        end
    done
  done;
  { means; provenance; imputed = !imputed; unresolved = !unresolved }

let unreachable (m : Schemes.t) =
  let n = Array.length m.Schemes.samples in
  let out = ref [] in
  for i = n - 1 downto 0 do
    let touched = ref false in
    for k = 0 to n - 1 do
      if k <> i && (m.Schemes.samples.(i).(k) > 0 || m.Schemes.samples.(k).(i) > 0)
      then touched := true
    done;
    if not !touched then out := i :: !out
  done;
  !out

let drop_uncovered (m : Schemes.t) =
  let n = Array.length m.Schemes.samples in
  let kept = Array.make n true in
  let missing_of i =
    (* Unsampled ordered pairs touching instance [i], restricted to the
       currently-kept set. *)
    let c = ref 0 in
    for k = 0 to n - 1 do
      if k <> i && kept.(k) then begin
        if m.Schemes.samples.(i).(k) = 0 then incr c;
        if m.Schemes.samples.(k).(i) = 0 then incr c
      end
    done;
    !c
  in
  let rec prune () =
    let worst = ref (-1) and worst_missing = ref 0 in
    for i = 0 to n - 1 do
      if kept.(i) then begin
        let miss = missing_of i in
        if miss > !worst_missing then begin
          worst := i;
          worst_missing := miss
        end
      end
    done;
    if !worst >= 0 then begin
      kept.(!worst) <- false;
      prune ()
    end
  in
  prune ();
  let idx = ref [] in
  for i = n - 1 downto 0 do
    if kept.(i) then idx := i :: !idx
  done;
  let idx = Array.of_list !idx in
  let sub =
    Array.map
      (fun i -> Array.map (fun j -> if i = j then 0.0 else m.Schemes.means.(i).(j)) idx)
      idx
  in
  (idx, sub)
