(** Partial-matrix degradation: complete a measured latency matrix whose
    probe run lost some ordered pairs (Sect. 5 under faults).

    Downstream solvers need a full matrix; under probe loss or crashes a
    scheme returns [nan] where no sample survived. This module offers two
    repairs, both conservative — they can only overestimate a link, never
    make a deployment look better than measured:

    - {b Imputation} ({!complete}): a missing (i, j) first borrows the
      measured reverse direction (j, i) — latency asymmetry in these
      networks is small — and otherwise takes the maximum over measured
      entries in row i and column j, a pessimistic proxy that keeps the
      longest-link objective sound. Every entry carries provenance so
      lint and reports can say exactly what was invented.
    - {b Dropping} ({!drop_uncovered}): discard instances until the
      remaining submatrix is fully measured — the right call when an
      instance crashed and its whole row is fiction anyway. Works well
      with over-allocation: the advisor terminates unmeasurable
      instances just as it terminates unused ones. *)

type provenance =
  | Measured     (** at least one sample survived for this ordered pair *)
  | Reflected    (** copied from the measured opposite direction *)
  | Row_col_max  (** conservative max over measured row/column entries *)
  | Missing      (** no basis for an estimate; entry left [nan] *)

type completed = {
  means : float array array;         (** completed matrix; [nan] only where
                                         provenance is [Missing] *)
  provenance : provenance array array;  (** per ordered pair; diagonal is
                                            [Measured] by convention *)
  imputed : int;                     (** ordered pairs filled in *)
  unresolved : int;                  (** ordered pairs still [Missing] *)
}

val complete : Schemes.t -> completed
(** Impute every unsampled ordered pair as described above. [unresolved]
    is nonzero only when some instance has no measured entry in an entire
    row {e and} column intersection — e.g. an instance that crashed
    before answering anything. *)

val unreachable : Schemes.t -> int list
(** Instances with no measured samples in their row nor their column —
    nothing, not even imputation, can place them. Ascending order. *)

val drop_uncovered : Schemes.t -> int array * float array array
(** Greedily drop the instance with the most unsampled ordered pairs
    (lowest index on ties) until the remaining submatrix is fully
    measured. Returns the kept instance indices (ascending, into the
    original numbering) and the fully-measured submatrix. The kept set
    may be empty if nothing was measured at all. *)
