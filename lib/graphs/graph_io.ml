let tokens_of line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_spec spec =
  let fail () = Error (Printf.sprintf "unrecognized graph spec: %S" spec) in
  let int s = int_of_string_opt s in
  match tokens_of (String.trim spec) with
  | [ "mesh2d"; r; c ] -> (
      match (int r, int c) with
      | Some rows, Some cols when rows > 0 && cols > 0 -> Ok (Templates.mesh2d ~rows ~cols)
      | _ -> fail ())
  | [ "torus2d"; r; c ] -> (
      match (int r, int c) with
      | Some rows, Some cols when rows >= 3 && cols >= 3 -> Ok (Templates.torus2d ~rows ~cols)
      | _ -> fail ())
  | [ "mesh3d"; x; y; z ] -> (
      match (int x, int y, int z) with
      | Some nx, Some ny, Some nz when nx > 0 && ny > 0 && nz > 0 ->
          Ok (Templates.mesh3d ~nx ~ny ~nz)
      | _ -> fail ())
  | [ "tree"; f; d ] -> (
      match (int f, int d) with
      | Some fanout, Some depth when fanout > 0 && depth >= 0 ->
          Ok (Templates.aggregation_tree ~fanout ~depth)
      | _ -> fail ())
  | [ "bipartite"; f; s ] -> (
      match (int f, int s) with
      | Some front_ends, Some storage when front_ends > 0 && storage > 0 ->
          Ok (Templates.bipartite ~front_ends ~storage)
      | _ -> fail ())
  | [ "ring"; n ] -> (
      match int n with Some n when n >= 3 -> Ok (Templates.ring ~n) | _ -> fail ())
  | [ "star"; n ] -> (
      match int n with Some n when n >= 1 -> Ok (Templates.star ~n) | _ -> fail ())
  | [ "hypercube"; d ] -> (
      match int d with
      | Some dims when dims >= 0 && dims <= 20 -> Ok (Templates.hypercube ~dims)
      | _ -> fail ())
  | _ -> fail ()

(* Syntax-only pass shared by the strict parser and the raw one the
   linter uses: node count plus every edge entry, unchecked against
   range / self-loop / duplicate invariants. *)
let parse_edge_list_entries text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty input"
  | header :: rest -> (
      match tokens_of header with
      | [ "nodes"; n ] -> (
          match int_of_string_opt n with
          | None -> Error "nodes line: not a number"
          | Some n when n <= 0 -> Error "nodes line: need a positive count"
          | Some n -> (
              let parse_edge lineno line =
                match tokens_of line with
                | [ u; v ] -> (
                    match (int_of_string_opt u, int_of_string_opt v) with
                    | Some u, Some v -> Ok ((u, v), None)
                    | _ -> Error (Printf.sprintf "line %d: bad edge %S" lineno line))
                | [ u; v; w ] -> (
                    match (int_of_string_opt u, int_of_string_opt v, float_of_string_opt w) with
                    | Some u, Some v, Some w when w > 0.0 -> Ok ((u, v), Some w)
                    | _ -> Error (Printf.sprintf "line %d: bad weighted edge %S" lineno line))
                | _ -> Error (Printf.sprintf "line %d: expected 'src dst [weight]'" lineno)
              in
              let rec collect lineno acc = function
                | [] -> Ok (List.rev acc)
                | line :: rest -> (
                    match parse_edge lineno line with
                    | Ok e -> collect (lineno + 1) (e :: acc) rest
                    | Error _ as e -> e)
              in
              match collect 2 [] rest with
              | Error e -> Error e
              | Ok entries -> Ok (n, entries)))
      | _ -> Error "first non-comment line must be 'nodes N'")

let parse_edge_list_raw text =
  match parse_edge_list_entries text with
  | Error e -> Error e
  | Ok (n, entries) -> Ok (n, List.map fst entries)

let parse_edge_list text =
  match parse_edge_list_entries text with
  | Error e -> Error e
  | Ok (n, entries) -> (
      let edges = List.map fst entries in
      match Digraph.create ~n edges with
      | exception Invalid_argument msg -> Error msg
      | graph ->
          let weights =
            List.filter_map (fun (e, w) -> Option.map (fun w -> (e, w)) w) entries
          in
          Ok (graph, weights))

let print_edge_list ?(weights = []) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Digraph.n g));
  Array.iter
    (fun (u, v) ->
      match List.assoc_opt (u, v) weights with
      | Some w -> Buffer.add_string buf (Printf.sprintf "%d %d %g\n" u v w)
      | None -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    (Digraph.edges g);
  Buffer.contents buf
