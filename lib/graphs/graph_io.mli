(** Textual communication-graph input and output.

    ClouDiA's tenants describe their application's [talks] relation either
    through a template ("communication graph templates for certain common
    graph structures such as meshes or bipartite graphs", Sect. 3.3) or as
    an explicit edge list; this module parses both forms for the CLI.

    Template specs (whitespace-separated):
    {v
      mesh2d ROWS COLS          torus2d ROWS COLS    mesh3d NX NY NZ
      tree FANOUT DEPTH         bipartite FRONT STORAGE
      ring N                    star N               hypercube DIMS
    v}

    Edge-list format — comments start with [#]; the [nodes] line is
    required and comes first; each edge line is [src dst] with an optional
    positive weight:
    {v
      # my app
      nodes 4
      0 1
      1 2 2.5
      2 3
    v} *)

val parse_spec : string -> (Digraph.t, string) result
(** Parse a template spec string. *)

val parse_edge_list : string -> (Digraph.t * ((int * int) * float) list, string) result
(** Parse edge-list text; returns the graph and the explicit edge weights
    (edges without a weight column are omitted from the list). *)

val parse_edge_list_raw : string -> (int * (int * int) list, string) result
(** Syntax-only variant for the linter: the declared node count and every
    edge as written, without the range / self-loop / duplicate validation
    {!Digraph.create} performs — so [cloudia lint] can report each
    structural problem with a code instead of stopping at the first. *)

val print_edge_list : ?weights:((int * int) * float) list -> Digraph.t -> string
(** Render a graph back to the edge-list format (round-trips with
    {!parse_edge_list}). *)
