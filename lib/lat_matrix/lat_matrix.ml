(* See the .mli for the format and the design notes. In memory the matrix
   is always a float64 Bigarray.Array2 (C layout, outside the OCaml heap),
   so kernels never dispatch on the storage mode and float64 arithmetic is
   bit-identical to the historical boxed representation; the [storage] tag
   only selects the on-disk element width, with Float32 values quantized
   once at construction so disk round trips are exact. *)

type storage = Float64 | Float32

let storage_to_string = function Float64 -> "float64" | Float32 -> "float32"

let storage_of_string = function
  | "float64" | "f64" -> Some Float64
  | "float32" | "f32" -> Some Float32
  | _ -> None

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

type t = { data : buffer; storage : storage }

let storage t = t.storage
let dim t = Bigarray.Array2.dim1 t.data
let data t = t.data

let quantize mode v =
  match mode with
  | Float64 -> v
  | Float32 -> Int32.float_of_bits (Int32.bits_of_float v)

let create ?(storage = Float64) n =
  if n < 0 then invalid_arg "Lat_matrix.create: negative dimension";
  let data = Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout n n in
  Bigarray.Array2.fill data 0.0;
  { data; storage }

let init ?(storage = Float64) n f =
  let t = create ~storage n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Bigarray.Array2.unsafe_set t.data i j (quantize storage (f i j))
    done
  done;
  t

let of_arrays ?(storage = Float64) rows =
  let n = Array.length rows in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        invalid_arg
          (Printf.sprintf "Lat_matrix.of_arrays: row %d has %d entries, expected %d" i
             (Array.length row) n))
    rows;
  init ~storage n (fun i j -> rows.(i).(j))

let to_arrays t =
  let n = dim t in
  Array.init n (fun i -> Array.init n (fun j -> Bigarray.Array2.unsafe_get t.data i j))

let with_storage mode t = init ~storage:mode (dim t) (fun i j -> Bigarray.Array2.unsafe_get t.data i j)

let get t i j =
  let n = dim t in
  if i < 0 || i >= n || j < 0 || j >= n then
    invalid_arg (Printf.sprintf "Lat_matrix.get: (%d, %d) outside %dx%d" i j n n);
  Bigarray.Array2.unsafe_get t.data i j

let[@inline] unsafe_get t i j = Bigarray.Array2.unsafe_get t.data i j

let set t i j v =
  let n = dim t in
  if i < 0 || i >= n || j < 0 || j >= n then
    invalid_arg (Printf.sprintf "Lat_matrix.set: (%d, %d) outside %dx%d" i j n n);
  Bigarray.Array2.unsafe_set t.data i j v

let[@inline] add t i j v =
  Bigarray.Array2.set t.data i j (Bigarray.Array2.get t.data i j +. v)

let row t i = Bigarray.Array2.slice_left t.data i

let iter f t =
  let n = dim t in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      f i j (Bigarray.Array2.unsafe_get t.data i j)
    done
  done

let off_diagonal t =
  let n = dim t in
  let out = Array.make (max 0 (n * (n - 1))) 0.0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        out.(!k) <- Bigarray.Array2.unsafe_get t.data i j;
        incr k
      end
    done
  done;
  out

let equal a b =
  dim a = dim b
  &&
  let n = dim a in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if
        Int64.bits_of_float (Bigarray.Array2.unsafe_get a.data i j)
        <> Int64.bits_of_float (Bigarray.Array2.unsafe_get b.data i j)
      then ok := false
    done
  done;
  !ok

(* FNV-1a over the float64 bit patterns in row-major order, seeded with
   the dimension. Bit-level, so +0.0 vs -0.0 and distinct NaN payloads
   hash apart — exactly the distinctions [equal] draws. *)
let fingerprint t =
  let n = dim t in
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix_byte b = h := Int64.mul (Int64.logxor !h (Int64.of_int b)) prime in
  let mix_int64 v =
    for k = 0 to 7 do
      mix_byte (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xffL))
    done
  in
  mix_int64 (Int64.of_int n);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      mix_int64 (Int64.bits_of_float (Bigarray.Array2.unsafe_get t.data i j))
    done
  done;
  !h

let fingerprint_hex t = Printf.sprintf "%016Lx" (fingerprint t)

(* ---------- binary I/O ---------- *)

let magic = "CLDALAT1"
let header_bytes = 64
let format_version = 1

let storage_tag = function Float64 -> 0 | Float32 -> 1

let elem_bytes = function Float64 -> 8 | Float32 -> 4

let write_binary path t =
  let n = dim t in
  let oc = Out_channel.open_bin path in
  Fun.protect ~finally:(fun () -> Out_channel.close oc) @@ fun () ->
  let header = Bytes.make header_bytes '\000' in
  Bytes.blit_string magic 0 header 0 (String.length magic);
  Bytes.set_int32_le header 8 (Int32.of_int format_version);
  Bytes.set_int32_le header 12 (Int32.of_int (storage_tag t.storage));
  Bytes.set_int32_le header 16 (Int32.of_int n);
  Bytes.set_int32_le header 20 (Int32.of_int n);
  Out_channel.output_bytes oc header;
  (* One reused row buffer; [set_int*_le] keeps the payload little-endian
     on every host. *)
  let w = elem_bytes t.storage in
  let rowbuf = Bytes.create (max 1 (n * w)) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v = Bigarray.Array2.unsafe_get t.data i j in
      match t.storage with
      | Float64 -> Bytes.set_int64_le rowbuf (j * 8) (Int64.bits_of_float v)
      | Float32 -> Bytes.set_int32_le rowbuf (j * 4) (Int32.bits_of_float v)
    done;
    Out_channel.output oc rowbuf 0 (n * w)
  done

let read_header bytes =
  if Bytes.length bytes < header_bytes then Error "truncated header"
  else if Bytes.sub_string bytes 0 (String.length magic) <> magic then
    Error "bad magic (not a ClouDiA binary matrix)"
  else begin
    let version = Int32.to_int (Bytes.get_int32_le bytes 8) in
    let tag = Int32.to_int (Bytes.get_int32_le bytes 12) in
    let rows = Int32.to_int (Bytes.get_int32_le bytes 16) in
    let cols = Int32.to_int (Bytes.get_int32_le bytes 20) in
    if version <> format_version then
      Error (Printf.sprintf "unsupported format version %d (expected %d)" version format_version)
    else
      match tag with
      | 0 | 1 ->
          let mode = if tag = 0 then Float64 else Float32 in
          if rows <> cols then Error (Printf.sprintf "non-square dims %dx%d" rows cols)
          else if rows < 0 then Error "negative dimension"
          else Ok (mode, rows)
      | _ -> Error (Printf.sprintf "unknown storage tag %d" tag)
  end

let read_payload ic mode n =
  let w = elem_bytes mode in
  let t = create ~storage:mode n in
  let rowbuf = Bytes.create (max 1 (n * w)) in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       (match In_channel.really_input ic rowbuf 0 (n * w) with
       | None -> raise Exit
       | Some () -> ());
       for j = 0 to n - 1 do
         let v =
           match mode with
           | Float64 -> Int64.float_of_bits (Bytes.get_int64_le rowbuf (j * 8))
           | Float32 -> Int32.float_of_bits (Bytes.get_int32_le rowbuf (j * 4))
         in
         Bigarray.Array2.unsafe_set t.data i j v
       done
     done
   with Exit -> ok := false);
  if !ok then Ok t else Error "truncated payload"

(* Zero-copy path: the 64-byte header is exactly eight float64 slots, so
   the whole file maps as one flat float64 vector and the payload is a
   contiguous sub-view reshaped to 2-D. MAP_PRIVATE (shared:false) keeps
   caller writes out of the file. Only sound when the payload is already
   the in-memory representation: float64 elements on a little-endian
   host; every other case takes the portable channel path. *)
let try_mmap path n =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let total = 8 + (n * n) in
  let g = Unix.map_file fd Bigarray.float64 Bigarray.c_layout false [| total |] in
  let flat = Bigarray.array1_of_genarray g in
  let payload = Bigarray.Array1.sub flat 8 (n * n) in
  let data = Bigarray.reshape_2 (Bigarray.genarray_of_array1 payload) n n in
  { data; storage = Float64 }

let read_binary ?(mmap = false) path =
  match In_channel.open_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect ~finally:(fun () -> In_channel.close ic) @@ fun () ->
      let header = Bytes.create header_bytes in
      (match In_channel.really_input ic header 0 header_bytes with
      | None -> Error "truncated header"
      | Some () -> (
          match read_header header with
          | Error _ as e -> e
          | Ok (mode, n) ->
              let expected = header_bytes + (n * n * elem_bytes mode) in
              let size = In_channel.length ic |> Int64.to_int in
              if size < expected then
                Error
                  (Printf.sprintf "truncated payload (%d bytes, expected %d)" size expected)
              else if mmap && mode = Float64 && not Sys.big_endian then
                match try_mmap path n with
                | t -> Ok t
                | exception Unix.Unix_error (e, _, _) ->
                    Error ("mmap failed: " ^ Unix.error_message e)
              else read_payload ic mode n))

let looks_binary path =
  match In_channel.open_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect ~finally:(fun () -> In_channel.close ic) @@ fun () ->
      let buf = Bytes.create (String.length magic) in
      (match In_channel.really_input ic buf 0 (String.length magic) with
      | None -> false
      | Some () -> Bytes.to_string buf = magic)
