(** Flat, row-major pairwise latency matrices.

    The solvers spend essentially all their time reading the cost matrix.
    A [float array array] of 1000+ instances is ~8 MB of boxed rows the GC
    must scan and the cache must chase; this module stores the same values
    in one contiguous [Bigarray.Array2] (float64, C layout) that lives
    outside the OCaml heap, with O(1) unsafe row slices for kernel loops.

    {2 Storage modes}

    Values are always held (and computed on) as float64 in memory, so
    every float64 result is bit-identical to the historical boxed
    representation. The {!storage} tag selects the {e on-disk} element
    width: [Float32] halves the file and quantizes each entry to the
    nearest single-precision value at construction time — a relative
    error of at most 2⁻²⁴ (≈ 6e-8), four orders of magnitude below the
    µs-scale differences the paper's latency matrices exhibit — after
    which binary round trips are exact.

    {2 On-disk binary format}

    A 64-byte header followed by the raw row-major payload, everything
    little-endian:

    {v
      offset  size  field
      0       8     magic "CLDALAT1"
      8       4     format version (u32, = 1)
      12      4     storage tag (u32: 0 = float64, 1 = float32)
      16      4     rows (u32)
      20      4     cols (u32, = rows; square matrices only)
      24      40    zero padding (reserved)
      64      r*c*w payload, row-major, w = 8 (float64) or 4 (float32)
    v}

    The 64-byte header is a whole number of elements in either width, so
    a float64 file can be mapped directly: {!read_binary} [~mmap:true]
    returns a zero-copy (copy-on-write) view of the payload on
    little-endian hosts. NaN entries (unsampled pairs) round-trip through
    the payload bit-for-bit in float64 mode, and stay NaN in float32
    mode. *)

type storage = Float64 | Float32

val storage_to_string : storage -> string
val storage_of_string : string -> storage option

type t

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t
(** The in-memory representation: one contiguous float64 block. Kernel
    loops should hoist {!data} once and read with
    [Bigarray.Array2.unsafe_get] — bigarray primitives specialize on the
    call-site type, so such reads compile to direct loads even in builds
    without cross-module inlining ([-opaque] dev profile). *)

val storage : t -> storage

val dim : t -> int
(** Number of instances [n]; the matrix is [n × n]. *)

(** {2 Construction} *)

val create : ?storage:storage -> int -> t
(** [create n] is an [n × n] all-zero matrix (default storage [Float64]). *)

val init : ?storage:storage -> int -> (int -> int -> float) -> t
(** [init n f] fills entry [(i, j)] with [f i j] (row-major order),
    quantizing each value when [storage] is [Float32]. *)

val of_arrays : ?storage:storage -> float array array -> t
(** Copy a boxed square matrix into flat storage. Raises
    [Invalid_argument] if the rows are ragged. *)

val to_arrays : t -> float array array
(** Materialize a boxed copy — for cold paths (linting, printing) only. *)

val with_storage : storage -> t -> t
(** Re-tag (and, for [Float32], quantize) a copy of the matrix. *)

val quantize : storage -> float -> float
(** The value a given entry becomes under a storage mode: the identity
    for [Float64], round-to-nearest-single (widened back) for
    [Float32]. *)

(** {2 Access} *)

val get : t -> int -> int -> float
(** Bounds-checked read. *)

val unsafe_get : t -> int -> int -> float
(** Unchecked read for kernel loops whose indices are validated by
    construction. *)

val set : t -> int -> int -> float -> unit
(** Bounds-checked write (no quantization; accumulation buffers stay
    full-precision regardless of the storage tag). *)

val add : t -> int -> int -> float -> unit
(** [add t i j v] accumulates [v] into entry [(i, j)] — the probe-sum
    pattern of the measurement schemes, one flat read-modify-write. *)

val row : t -> int -> (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** O(1) view of row [i] — shares storage with the matrix. *)

val data : t -> buffer
(** The underlying flat buffer (always float64 in memory). *)

val iter : (int -> int -> float -> unit) -> t -> unit
(** Row-major iteration over every entry. *)

val off_diagonal : t -> float array
(** The [n·(n-1)] off-diagonal entries in row-major order — the
    clustering input, read straight off the flat buffer. *)

val equal : t -> t -> bool
(** Bitwise value equality (NaN equals NaN of the same payload); the
    storage tags are not compared. *)

val fingerprint : t -> int64
(** Content hash (FNV-1a, 64-bit) over the dimension and the float64 bit
    patterns of the flat buffer in row-major order. Two matrices collide
    iff {!equal} would — same bits, same hash — so the serving cache can
    key clusterings, cost ranks, and warm starts by fingerprint. The
    storage tag is not hashed (it only affects the on-disk width). *)

val fingerprint_hex : t -> string
(** {!fingerprint} as 16 lowercase hex digits — the wire/key form. *)

(** {2 Binary I/O} *)

val magic : string
val header_bytes : int

val write_binary : string -> t -> unit
(** Write the binary format described above. Raises [Sys_error] on I/O
    failure. *)

val read_binary : ?mmap:bool -> string -> (t, string) result
(** Read a binary matrix file. With [~mmap:true] (default [false]) a
    float64 file on a little-endian host is mapped copy-on-write instead
    of copied through a channel; other cases silently fall back to the
    portable read path. Returns [Error] on missing files, bad magic,
    unsupported version/tag, non-square dims or truncated payloads. *)

val looks_binary : string -> bool
(** Whether a file starts with {!magic} — format sniffing for loaders
    that accept both CSV and binary matrices. *)
