(* Tests for the directed graph library: construction, DAG utilities,
   templates, matching, SCC, and compatibility labeling. *)

open Graphs

let check_float name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f got %.6f" name expected actual)
    true
    (Float.abs (expected -. actual) <= 1e-9)

(* ---------- Digraph basics ---------- *)

let test_create_and_query () =
  let g = Digraph.create ~n:4 [ (0, 1); (1, 2); (0, 2); (0, 1) ] in
  Alcotest.(check int) "n" 4 (Digraph.n g);
  Alcotest.(check int) "dedup edges" 3 (Digraph.edge_count g);
  Alcotest.(check bool) "mem 0->1" true (Digraph.mem_edge g 0 1);
  Alcotest.(check bool) "no 1->0" false (Digraph.mem_edge g 1 0);
  Alcotest.(check (array int)) "out 0" [| 1; 2 |] (Digraph.out_neighbors g 0);
  Alcotest.(check (array int)) "in 2" [| 0; 1 |] (Digraph.in_neighbors g 2);
  Alcotest.(check int) "out-degree" 2 (Digraph.out_degree g 0);
  Alcotest.(check int) "in-degree isolated" 0 (Digraph.in_degree g 3)

let test_create_rejects_bad_edges () =
  Alcotest.check_raises "out of range" (Invalid_argument "Digraph.create: edge endpoint out of range")
    (fun () -> ignore (Digraph.create ~n:2 [ (0, 5) ]));
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.create: self-loop")
    (fun () -> ignore (Digraph.create ~n:2 [ (1, 1) ]))

let test_dag_detection () =
  let dag = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let cyc = Digraph.create ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "dag" true (Digraph.is_dag dag);
  Alcotest.(check bool) "cycle" false (Digraph.is_dag cyc)

let test_topological_order () =
  let g = Digraph.create ~n:5 [ (0, 2); (1, 2); (2, 3); (3, 4) ] in
  match Digraph.topological_order g with
  | None -> Alcotest.fail "expected a topological order"
  | Some order ->
      let pos = Array.make 5 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      Array.iter
        (fun (u, v) -> Alcotest.(check bool) "edge respects order" true (pos.(u) < pos.(v)))
        (Digraph.edges g)

let test_longest_path_chain () =
  let g = Digraph.create ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  check_float "chain sum" 6.0 (Digraph.longest_path g ~weight:(fun _ _ -> 2.0))

let test_longest_path_diamond () =
  (* 0 -> 1 -> 3 (cost 1 + 5), 0 -> 2 -> 3 (cost 2 + 1): longest is 6. *)
  let g = Digraph.create ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let weight u v =
    match (u, v) with
    | 0, 1 -> 1.0
    | 0, 2 -> 2.0
    | 1, 3 -> 5.0
    | 2, 3 -> 1.0
    | _ -> Alcotest.fail "unexpected edge"
  in
  check_float "diamond" 6.0 (Digraph.longest_path g ~weight);
  let value, path = Digraph.longest_path_witness g ~weight in
  check_float "witness value" 6.0 value;
  Alcotest.(check (list int)) "witness path" [ 0; 1; 3 ] path

let test_longest_path_empty_graph_nodes () =
  let g = Digraph.create ~n:3 [] in
  check_float "no edges" 0.0 (Digraph.longest_path g ~weight:(fun _ _ -> 1.0))

let test_longest_path_rejects_cycle () =
  let g = Digraph.create ~n:2 [ (0, 1); (1, 0) ] in
  Alcotest.check_raises "cycle" (Invalid_argument "Digraph.longest_path: graph has a cycle")
    (fun () -> ignore (Digraph.longest_path g ~weight:(fun _ _ -> 1.0)))

let test_transpose () =
  let g = Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let t = Digraph.transpose g in
  Alcotest.(check bool) "reversed" true (Digraph.mem_edge t 1 0 && Digraph.mem_edge t 2 1);
  Alcotest.(check int) "same count" 2 (Digraph.edge_count t)

let test_map_nodes () =
  let g = Digraph.create ~n:2 [ (0, 1) ] in
  let h = Digraph.map_nodes g (fun v -> v + 3) ~n:6 in
  Alcotest.(check bool) "mapped edge" true (Digraph.mem_edge h 3 4)

let test_connectivity () =
  let conn = Digraph.create ~n:3 [ (0, 1); (2, 1) ] in
  let disc = Digraph.create ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "connected" true (Digraph.is_connected_undirected conn);
  Alcotest.(check bool) "disconnected" false (Digraph.is_connected_undirected disc)

(* ---------- Templates ---------- *)

let test_mesh2d_shape () =
  let g = Templates.mesh2d ~rows:3 ~cols:4 in
  Alcotest.(check int) "nodes" 12 (Digraph.n g);
  (* 2*(3*3 + 2*4) directed edges: horizontal 3 rows × 3, vertical 2 rows × 4. *)
  Alcotest.(check int) "edges" (2 * ((3 * 3) + (2 * 4))) (Digraph.edge_count g);
  Alcotest.(check bool) "corner degree" true (Digraph.out_degree g 0 = 2);
  Alcotest.(check bool) "interior degree" true (Digraph.out_degree g 5 = 4)

let test_mesh3d_shape () =
  let g = Templates.mesh3d ~nx:2 ~ny:2 ~nz:2 in
  Alcotest.(check int) "nodes" 8 (Digraph.n g);
  Alcotest.(check int) "edges" (2 * 12) (Digraph.edge_count g)

let test_torus_regular () =
  let g = Templates.torus2d ~rows:3 ~cols:3 in
  for v = 0 to 8 do
    Alcotest.(check int) "out-degree 4" 4 (Digraph.out_degree g v)
  done

let test_aggregation_tree_shape () =
  let g = Templates.aggregation_tree ~fanout:3 ~depth:2 in
  Alcotest.(check int) "nodes" 13 (Digraph.n g);
  Alcotest.(check int) "edges" 12 (Digraph.edge_count g);
  Alcotest.(check bool) "dag" true (Digraph.is_dag g);
  (* All edges point toward the root: the root has in-degree fanout, out 0. *)
  Alcotest.(check int) "root in" 3 (Digraph.in_degree g 0);
  Alcotest.(check int) "root out" 0 (Digraph.out_degree g 0)

let test_aggregation_tree_depth_zero () =
  let g = Templates.aggregation_tree ~fanout:4 ~depth:0 in
  Alcotest.(check int) "single node" 1 (Digraph.n g);
  Alcotest.(check int) "no edges" 0 (Digraph.edge_count g)

let test_bipartite_shape () =
  let g = Templates.bipartite ~front_ends:3 ~storage:5 in
  Alcotest.(check int) "nodes" 8 (Digraph.n g);
  Alcotest.(check int) "edges" 15 (Digraph.edge_count g);
  Alcotest.(check bool) "dag" true (Digraph.is_dag g);
  for f = 0 to 2 do
    Alcotest.(check int) "front-end fanout" 5 (Digraph.out_degree g f)
  done

let test_ring_and_star () =
  let r = Templates.ring ~n:5 in
  Alcotest.(check int) "ring edges" 5 (Digraph.edge_count r);
  Alcotest.(check bool) "ring not dag" false (Digraph.is_dag r);
  let s = Templates.star ~n:6 in
  Alcotest.(check int) "star edges" 5 (Digraph.edge_count s);
  Alcotest.(check int) "hub degree" 5 (Digraph.out_degree s 0)

let test_hypercube () =
  let g = Templates.hypercube ~dims:3 in
  Alcotest.(check int) "nodes" 8 (Digraph.n g);
  Alcotest.(check int) "edges" (2 * 12) (Digraph.edge_count g);
  for v = 0 to 7 do
    Alcotest.(check int) "regular degree" 3 (Digraph.out_degree g v)
  done

let test_random_dag_is_dag () =
  let rng = Prng.create 5 in
  for _ = 1 to 10 do
    let g = Templates.random_dag rng ~n:20 ~edge_prob:0.3 in
    Alcotest.(check bool) "dag" true (Digraph.is_dag g)
  done

let test_random_connected_is_connected () =
  let rng = Prng.create 6 in
  for _ = 1 to 10 do
    let g = Templates.random_connected rng ~n:15 ~extra_edges:5 in
    Alcotest.(check bool) "connected" true (Digraph.is_connected_undirected g)
  done

(* ---------- Matching ---------- *)

let test_matching_perfect () =
  (* Complete bipartite 3x3 has a perfect matching. *)
  let adj = Array.make 3 [| 0; 1; 2 |] in
  let m = Matching.maximum ~n_left:3 ~n_right:3 ~adj in
  Alcotest.(check int) "size" 3 m.Matching.size;
  Alcotest.(check bool) "perfect" true (Matching.is_perfect_left m)

let test_matching_bottleneck () =
  (* Two left nodes compete for the single right node 0. *)
  let adj = [| [| 0 |]; [| 0 |]; [| 1 |] |] in
  let m = Matching.maximum ~n_left:3 ~n_right:2 ~adj in
  Alcotest.(check int) "size" 2 m.Matching.size;
  Alcotest.(check bool) "not perfect" false (Matching.is_perfect_left m)

let test_matching_consistency () =
  let rng = Prng.create 77 in
  for _ = 1 to 20 do
    let nl = 1 + Prng.int rng 8 and nr = 1 + Prng.int rng 8 in
    let adj =
      Array.init nl (fun _ ->
          Array.of_list
            (List.filter (fun _ -> Prng.bool rng) (List.init nr (fun j -> j))))
    in
    let m = Matching.maximum ~n_left:nl ~n_right:nr ~adj in
    (* pair_left and pair_right must be mutually consistent injections. *)
    Array.iteri
      (fun u v -> if v <> -1 then Alcotest.(check int) "mutual" u m.Matching.pair_right.(v))
      m.Matching.pair_left;
    let matched = Array.fold_left (fun acc v -> if v <> -1 then acc + 1 else acc) 0 m.Matching.pair_left in
    Alcotest.(check int) "size consistent" m.Matching.size matched
  done

(* ---------- Scc ---------- *)

let test_scc_cycle_plus_tail () =
  (* 0 -> 1 -> 2 -> 0 is one SCC; 3 is alone. *)
  let g = Digraph.create ~n:4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  let comp = Scc.tarjan ~n:4 ~succ:(Digraph.out_neighbors g) in
  Alcotest.(check int) "two components" 2 (Scc.count comp);
  Alcotest.(check bool) "cycle together" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  Alcotest.(check bool) "tail separate" true (comp.(3) <> comp.(0))

let test_scc_dag_all_singletons () =
  let g = Digraph.create ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let comp = Scc.tarjan ~n:5 ~succ:(Digraph.out_neighbors g) in
  Alcotest.(check int) "five singletons" 5 (Scc.count comp)

let test_scc_two_cycles () =
  let g = Digraph.create ~n:6 [ (0, 1); (1, 0); (2, 3); (3, 4); (4, 2); (1, 2) ] in
  let comp = Scc.tarjan ~n:6 ~succ:(Digraph.out_neighbors g) in
  Alcotest.(check int) "three components" 3 (Scc.count comp);
  Alcotest.(check bool) "pair cycle" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "triple cycle" true (comp.(2) = comp.(3) && comp.(3) = comp.(4));
  Alcotest.(check bool) "isolated" true (comp.(5) <> comp.(0) && comp.(5) <> comp.(2))

(* ---------- Labeling ---------- *)

let test_labeling_mesh_into_larger_mesh () =
  (* Every node of a 2x2 mesh is degree 2, so it must be compatible with the
     well-connected interior of a 4x4 mesh. *)
  let pattern = Templates.mesh2d ~rows:2 ~cols:2 in
  let target = Templates.mesh2d ~rows:4 ~cols:4 in
  let m = Labeling.compatibility_matrix ~pattern ~target in
  (* Interior node 5 of the 4x4 mesh has degree 4 >= 2 with well-connected
     neighbors: compatible with every pattern node. *)
  for p = 0 to 3 do
    Alcotest.(check bool) "interior compatible" true m.(p).(5)
  done

let test_labeling_excludes_low_degree () =
  (* A star hub of degree 5 cannot map into any node of a 2x3 mesh
     (max degree 3). *)
  let pattern = Templates.star ~n:6 in
  let target = Templates.mesh2d ~rows:2 ~cols:3 in
  let m = Labeling.compatibility_matrix ~pattern ~target in
  for t = 0 to 5 do
    Alcotest.(check bool) "hub incompatible everywhere" false m.(0).(t)
  done

let test_labeling_identity_compatible () =
  let g = Templates.aggregation_tree ~fanout:2 ~depth:3 in
  let m = Labeling.compatibility_matrix ~pattern:g ~target:g in
  for v = 0 to Digraph.n g - 1 do
    Alcotest.(check bool) "self compatible" true m.(v).(v)
  done

let qcheck_props =
  [
    QCheck.Test.make ~name:"longest path >= any single edge weight" ~count:100
      QCheck.(pair small_int (int_range 2 15))
      (fun (seed, n) ->
        let rng = Prng.create seed in
        let g = Templates.random_dag rng ~n ~edge_prob:0.3 in
        let w = Array.init n (fun _ -> Array.init n (fun _ -> Prng.float rng 10.0)) in
        let weight u v = w.(u).(v) in
        let lp = Digraph.longest_path g ~weight in
        Array.for_all (fun (u, v) -> lp >= weight u v -. 1e-9) (Digraph.edges g));
    QCheck.Test.make ~name:"transpose twice is identity (edge set)" ~count:100
      QCheck.(pair small_int (int_range 1 15))
      (fun (seed, n) ->
        let rng = Prng.create seed in
        let g = Templates.random_dag rng ~n ~edge_prob:0.4 in
        let tt = Digraph.transpose (Digraph.transpose g) in
        Digraph.edges g = Digraph.edges tt);
    QCheck.Test.make ~name:"matching size bounded by min side" ~count:100
      QCheck.(pair small_int (pair (int_range 1 10) (int_range 1 10)))
      (fun (seed, (nl, nr)) ->
        let rng = Prng.create seed in
        let adj =
          Array.init nl (fun _ ->
              Array.of_list (List.filter (fun _ -> Prng.bool rng) (List.init nr (fun j -> j))))
        in
        let m = Matching.maximum ~n_left:nl ~n_right:nr ~adj in
        m.Matching.size <= min nl nr);
  ]

let suite =
  [
    Alcotest.test_case "create and query" `Quick test_create_and_query;
    Alcotest.test_case "create rejects bad edges" `Quick test_create_rejects_bad_edges;
    Alcotest.test_case "dag detection" `Quick test_dag_detection;
    Alcotest.test_case "topological order" `Quick test_topological_order;
    Alcotest.test_case "longest path chain" `Quick test_longest_path_chain;
    Alcotest.test_case "longest path diamond" `Quick test_longest_path_diamond;
    Alcotest.test_case "longest path no edges" `Quick test_longest_path_empty_graph_nodes;
    Alcotest.test_case "longest path rejects cycle" `Quick test_longest_path_rejects_cycle;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "map nodes" `Quick test_map_nodes;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "mesh2d shape" `Quick test_mesh2d_shape;
    Alcotest.test_case "mesh3d shape" `Quick test_mesh3d_shape;
    Alcotest.test_case "torus regular" `Quick test_torus_regular;
    Alcotest.test_case "aggregation tree shape" `Quick test_aggregation_tree_shape;
    Alcotest.test_case "aggregation tree depth 0" `Quick test_aggregation_tree_depth_zero;
    Alcotest.test_case "bipartite shape" `Quick test_bipartite_shape;
    Alcotest.test_case "ring and star" `Quick test_ring_and_star;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "random dag is dag" `Quick test_random_dag_is_dag;
    Alcotest.test_case "random connected is connected" `Quick test_random_connected_is_connected;
    Alcotest.test_case "matching perfect" `Quick test_matching_perfect;
    Alcotest.test_case "matching bottleneck" `Quick test_matching_bottleneck;
    Alcotest.test_case "matching consistency" `Quick test_matching_consistency;
    Alcotest.test_case "scc cycle plus tail" `Quick test_scc_cycle_plus_tail;
    Alcotest.test_case "scc dag singletons" `Quick test_scc_dag_all_singletons;
    Alcotest.test_case "scc two cycles" `Quick test_scc_two_cycles;
    Alcotest.test_case "labeling mesh into larger mesh" `Quick test_labeling_mesh_into_larger_mesh;
    Alcotest.test_case "labeling excludes low degree" `Quick test_labeling_excludes_low_degree;
    Alcotest.test_case "labeling identity compatible" `Quick test_labeling_identity_compatible;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props
