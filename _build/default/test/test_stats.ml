open Stats

(* Tests for summaries, CDFs, error measures, correlation and 1-D k-means. *)

let feq ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol

let check_float name ?tol expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f got %.6f" name expected actual)
    true (feq ?tol expected actual)

(* ---------- Summary ---------- *)

let test_mean () = check_float "mean" 2.5 (Summary.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_variance () =
  check_float "variance" 1.25 (Summary.variance [| 1.0; 2.0; 3.0; 4.0 |])

let test_stddev () = check_float "sd" (sqrt 1.25) (Summary.stddev [| 1.0; 2.0; 3.0; 4.0 |])

let test_min_max () =
  check_float "min" (-2.0) (Summary.min [| 3.0; -2.0; 7.0 |]);
  check_float "max" 7.0 (Summary.max [| 3.0; -2.0; 7.0 |])

let test_percentile_interpolation () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (Summary.percentile xs 0.0);
  check_float "p100" 40.0 (Summary.percentile xs 100.0);
  check_float "p50" 25.0 (Summary.percentile xs 50.0);
  check_float "p25" 17.5 (Summary.percentile xs 25.0)

let test_percentile_single () = check_float "single" 5.0 (Summary.percentile [| 5.0 |] 73.0)

let test_percentile_unsorted_input () =
  check_float "unsorted" 25.0 (Summary.percentile [| 40.0; 10.0; 30.0; 20.0 |] 50.0)

let test_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Summary.mean: empty array")
    (fun () -> ignore (Summary.mean [||]))

let test_of_array_consistent () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  let s = Summary.of_array xs in
  Alcotest.(check int) "n" 101 s.Summary.n;
  check_float "mean" 50.0 s.Summary.mean;
  check_float "p50" 50.0 s.Summary.p50;
  check_float "p99" 99.0 s.Summary.p99;
  check_float "min" 0.0 s.Summary.min;
  check_float "max" 100.0 s.Summary.max

(* ---------- Cdf ---------- *)

let test_cdf_eval () =
  let c = Cdf.of_samples [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "below" 0.0 (Cdf.eval c 0.5);
  check_float "at 1" 0.25 (Cdf.eval c 1.0);
  check_float "mid" 0.5 (Cdf.eval c 2.5);
  check_float "above" 1.0 (Cdf.eval c 10.0)

let test_cdf_inverse () =
  let c = Cdf.of_samples [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "q=0.25" 1.0 (Cdf.inverse c 0.25);
  check_float "q=0.5" 2.0 (Cdf.inverse c 0.5);
  check_float "q=1" 4.0 (Cdf.inverse c 1.0)

let test_cdf_series_monotone () =
  let rng = Prng.create 1 in
  let c = Cdf.of_samples (Array.init 200 (fun _ -> Prng.uniform rng)) in
  let s = Cdf.series ~points:30 c in
  Alcotest.(check int) "points" 30 (List.length s);
  let rec check_monotone = function
    | (x1, y1) :: ((x2, y2) :: _ as rest) ->
        Alcotest.(check bool) "x increasing" true (x2 > x1);
        Alcotest.(check bool) "y non-decreasing" true (y2 >= y1);
        check_monotone rest
    | _ -> ()
  in
  check_monotone s

(* ---------- Error ---------- *)

let test_normalize_unit () =
  let v = Error.normalize [| 3.0; 4.0 |] in
  check_float "unit norm" 1.0 (sqrt ((v.(0) *. v.(0)) +. (v.(1) *. v.(1))))

let test_rmse_zero_for_equal () = check_float "rmse" 0.0 (Error.rmse [| 1.0; 2.0 |] [| 1.0; 2.0 |])

let test_rmse_known () = check_float "rmse" 5.0 (Error.rmse [| 0.0; 0.0 |] [| 5.0; 5.0 |])

let test_scaling_invariance () =
  (* A uniform multiplicative bias must register as zero error (the paper's
     rationale for normalizing latency vectors before comparison). *)
  let baseline = [| 1.0; 2.0; 3.0; 4.0 |] in
  let scaled = Array.map (fun x -> 2.5 *. x) baseline in
  let errors = Error.normalized_relative_errors ~baseline scaled in
  Array.iter (fun e -> check_float "zero relative error" 0.0 e) errors;
  check_float "zero nrmse" 0.0 (Error.normalized_rmse ~baseline scaled)

let test_relative_error_detects_shape_change () =
  let baseline = [| 1.0; 1.0 |] in
  let skewed = [| 1.0; 2.0 |] in
  let errors = Error.normalized_relative_errors ~baseline skewed in
  Alcotest.(check bool) "nonzero" true (Array.exists (fun e -> e > 0.01) errors)

(* ---------- Correlation ---------- *)

let test_pearson_perfect () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = Array.map (fun v -> (2.0 *. v) +. 1.0) x in
  check_float "r=1" 1.0 (Correlation.pearson x y);
  let neg = Array.map (fun v -> -.v) x in
  check_float "r=-1" (-1.0) (Correlation.pearson x neg)

let test_spearman_monotone () =
  let x = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let y = Array.map (fun v -> exp v) x in
  check_float "rho=1 for monotone" 1.0 (Correlation.spearman x y)

let test_kendall_reversed () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = [| 4.0; 3.0; 2.0; 1.0 |] in
  check_float "tau=-1" (-1.0) (Correlation.kendall x y)

let test_pearson_zero_variance_nan () =
  Alcotest.(check bool) "nan" true
    (Float.is_nan (Correlation.pearson [| 1.0; 1.0 |] [| 1.0; 2.0 |]))

(* ---------- Kmeans1d ---------- *)

let test_kmeans_two_obvious_clusters () =
  let xs = [| 1.0; 1.1; 0.9; 10.0; 10.1; 9.9 |] in
  let r = Kmeans1d.cluster ~k:2 xs in
  Alcotest.(check int) "two centers" 2 (Array.length r.Kmeans1d.centers);
  check_float ~tol:1e-6 "low center" 1.0 r.Kmeans1d.centers.(0);
  check_float ~tol:1e-6 "high center" 10.0 r.Kmeans1d.centers.(1)

let test_kmeans_k_exceeds_distinct () =
  let xs = [| 1.0; 2.0; 1.0; 2.0 |] in
  let r = Kmeans1d.cluster ~k:10 xs in
  Alcotest.(check int) "capped at distinct count" 2 (Array.length r.Kmeans1d.centers);
  check_float "zero cost" 0.0 r.Kmeans1d.cost

let test_kmeans_assign () =
  let xs = [| 1.0; 1.2; 5.0; 5.5 |] in
  let r = Kmeans1d.cluster ~k:2 xs in
  check_float ~tol:1e-6 "assign low" 1.1 (Kmeans1d.assign r 0.8);
  check_float ~tol:1e-6 "assign high" 5.25 (Kmeans1d.assign r 6.0)

(* Brute-force optimal contiguous clustering for cross-validation. *)
let brute_force_sse k xs =
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let sse lo hi =
    let m = ref 0.0 in
    for i = lo to hi do
      m := !m +. sorted.(i)
    done;
    let m = !m /. float_of_int (hi - lo + 1) in
    let acc = ref 0.0 in
    for i = lo to hi do
      acc := !acc +. ((sorted.(i) -. m) *. (sorted.(i) -. m))
    done;
    !acc
  in
  (* Enumerate all ways to split [0, n) into at most k contiguous runs. *)
  let best = ref infinity in
  let rec go start clusters_left acc =
    if acc >= !best then ()
    else if start = n then (if acc < !best then best := acc)
    else if clusters_left = 0 then ()
    else
      for stop = start to n - 1 do
        go (stop + 1) (clusters_left - 1) (acc +. sse start stop)
      done
  in
  go 0 k 0.0;
  !best

let test_kmeans_matches_brute_force () =
  let rng = Prng.create 99 in
  for _ = 1 to 20 do
    let n = 4 + Prng.int rng 6 in
    let xs = Array.init n (fun _ -> Float.round (Prng.float rng 10.0 *. 10.0) /. 10.0) in
    let k = 1 + Prng.int rng 3 in
    let dp = (Kmeans1d.cluster ~k xs).Kmeans1d.cost in
    let bf = brute_force_sse k xs in
    check_float ~tol:1e-6 "dp equals brute force" bf dp
  done

(* ---------- Histogram ---------- *)

let test_histogram_counts () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 9.5; 11.0; -1.0 ];
  let c = Histogram.counts h in
  Alcotest.(check int) "bin 0 (incl clamped -1)" 2 c.(0);
  Alcotest.(check int) "bin 1" 2 c.(1);
  Alcotest.(check int) "bin 9 (incl clamped 11)" 2 c.(9);
  Alcotest.(check int) "total" 6 (Histogram.total h)

let qcheck_props =
  [
    QCheck.Test.make ~name:"percentile within [min,max]" ~count:300
      QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 40) (float_range (-100.) 100.)) (float_range 0. 100.))
      (fun (xs, p) ->
        let v = Summary.percentile xs p in
        v >= Summary.min xs -. 1e-9 && v <= Summary.max xs +. 1e-9);
    QCheck.Test.make ~name:"cdf eval monotone" ~count:200
      QCheck.(array_of_size (QCheck.Gen.int_range 1 30) (float_range 0. 10.))
      (fun xs ->
        let c = Cdf.of_samples xs in
        let a = Cdf.eval c 3.0 and b = Cdf.eval c 7.0 in
        a <= b);
    QCheck.Test.make ~name:"kmeans cost decreases with k" ~count:100
      QCheck.(array_of_size (QCheck.Gen.int_range 3 25) (float_range 0. 10.))
      (fun xs ->
        let c1 = (Kmeans1d.cluster ~k:1 xs).Kmeans1d.cost in
        let c2 = (Kmeans1d.cluster ~k:2 xs).Kmeans1d.cost in
        let c3 = (Kmeans1d.cluster ~k:3 xs).Kmeans1d.cost in
        c1 >= c2 -. 1e-9 && c2 >= c3 -. 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
    Alcotest.test_case "percentile single element" `Quick test_percentile_single;
    Alcotest.test_case "percentile unsorted input" `Quick test_percentile_unsorted_input;
    Alcotest.test_case "empty input raises" `Quick test_empty_raises;
    Alcotest.test_case "of_array consistency" `Quick test_of_array_consistent;
    Alcotest.test_case "cdf eval" `Quick test_cdf_eval;
    Alcotest.test_case "cdf inverse" `Quick test_cdf_inverse;
    Alcotest.test_case "cdf series monotone" `Quick test_cdf_series_monotone;
    Alcotest.test_case "normalize to unit" `Quick test_normalize_unit;
    Alcotest.test_case "rmse zero for equal" `Quick test_rmse_zero_for_equal;
    Alcotest.test_case "rmse known value" `Quick test_rmse_known;
    Alcotest.test_case "scaling invariance of normalized error" `Quick test_scaling_invariance;
    Alcotest.test_case "relative error detects shape change" `Quick
      test_relative_error_detects_shape_change;
    Alcotest.test_case "pearson perfect correlation" `Quick test_pearson_perfect;
    Alcotest.test_case "spearman monotone" `Quick test_spearman_monotone;
    Alcotest.test_case "kendall reversed" `Quick test_kendall_reversed;
    Alcotest.test_case "pearson zero variance is nan" `Quick test_pearson_zero_variance_nan;
    Alcotest.test_case "kmeans two obvious clusters" `Quick test_kmeans_two_obvious_clusters;
    Alcotest.test_case "kmeans k exceeds distinct" `Quick test_kmeans_k_exceeds_distinct;
    Alcotest.test_case "kmeans assign" `Quick test_kmeans_assign;
    Alcotest.test_case "kmeans matches brute force" `Quick test_kmeans_matches_brute_force;
    Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props
