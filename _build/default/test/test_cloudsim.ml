open Cloudsim

(* Tests for the datacenter topology, provider presets, and allocated
   environments. *)

(* ---------- Topology ---------- *)

let topo = Topology.create ~hosts_per_rack:4 ~racks_per_pod:3 ~pods:2

let test_topology_counts () =
  Alcotest.(check int) "hosts" 24 (Topology.host_count topo);
  Alcotest.(check int) "rack of host 0" 0 (Topology.rack_of topo 0);
  Alcotest.(check int) "rack of host 4" 1 (Topology.rack_of topo 4);
  Alcotest.(check int) "pod of host 0" 0 (Topology.pod_of topo 0);
  Alcotest.(check int) "pod of host 12" 1 (Topology.pod_of topo 12)

let test_topology_hops () =
  Alcotest.(check int) "same host" 0 (Topology.hop_count topo 3 3);
  Alcotest.(check int) "same rack" 1 (Topology.hop_count topo 0 3);
  Alcotest.(check int) "same pod" 3 (Topology.hop_count topo 0 4);
  Alcotest.(check int) "cross pod" 5 (Topology.hop_count topo 0 12)

let test_topology_hops_symmetric () =
  for a = 0 to 23 do
    for b = 0 to 23 do
      Alcotest.(check int) "symmetric" (Topology.hop_count topo a b) (Topology.hop_count topo b a)
    done
  done

let test_topology_ip_addresses_distinct () =
  let seen = Hashtbl.create 24 in
  for h = 0 to 23 do
    let ip = Topology.ip_address topo h in
    Alcotest.(check bool) "fresh" false (Hashtbl.mem seen ip);
    Hashtbl.add seen ip ()
  done

let test_topology_ip_structure () =
  let a, b, c, d = Topology.ip_address topo 0 in
  Alcotest.(check int) "/8 is 10" 10 a;
  Alcotest.(check bool) "octets positive" true (b >= 1 && c >= 1 && d >= 1);
  (* Hosts in the same rack share the first three octets. *)
  let a', b', c', _ = Topology.ip_address topo 1 in
  Alcotest.(check (pair int (pair int int))) "same /24" (a, (b, c)) (a', (b', c'))

let test_topology_rejects_bad_dims () =
  Alcotest.check_raises "zero pods"
    (Invalid_argument "Topology.create: all dimensions must be positive")
    (fun () -> ignore (Topology.create ~hosts_per_rack:1 ~racks_per_pod:1 ~pods:0))

(* ---------- Env ---------- *)

let ec2 = Provider.get Provider.Ec2

let make_env ?(seed = 7) ?(count = 40) () =
  Env.allocate (Prng.create seed) ec2 ~count

let test_env_distinct_hosts () =
  let env = make_env () in
  let seen = Hashtbl.create 40 in
  for i = 0 to Env.count env - 1 do
    let h = Env.host env i in
    Alcotest.(check bool) "host fresh" false (Hashtbl.mem seen h);
    Hashtbl.add seen h ()
  done

let test_env_mean_properties () =
  let env = make_env () in
  let n = Env.count env in
  for i = 0 to n - 1 do
    Alcotest.(check (float 0.0)) "diag zero" 0.0 (Env.mean_latency env i i);
    for j = 0 to n - 1 do
      if i <> j then
        Alcotest.(check bool) "positive" true (Env.mean_latency env i j > 0.0)
    done
  done

let test_env_means_deterministic () =
  let a = make_env ~seed:3 () and b = make_env ~seed:3 () in
  for i = 0 to 9 do
    for j = 0 to 9 do
      Alcotest.(check (float 1e-12)) "same seed same means"
        (Env.mean_latency a i j) (Env.mean_latency b i j)
    done
  done

let test_env_heterogeneity () =
  (* The allocation must show materially different link qualities: the
     whole premise of the paper (Fig. 1). *)
  let env = make_env ~count:60 () in
  let lats = ref [] in
  for i = 0 to 59 do
    for j = 0 to 59 do
      if i <> j then lats := Env.mean_latency env i j :: !lats
    done
  done;
  let arr = Array.of_list !lats in
  let s = Stats.Summary.of_array arr in
  Alcotest.(check bool) "p90 well above p50" true (s.Stats.Summary.p90 > 1.15 *. s.Stats.Summary.p50)

let test_env_sample_rtt_centers_on_mean () =
  let env = make_env () in
  let rng = Prng.create 11 in
  let samples = Array.init 4000 (fun _ -> Env.sample_rtt rng env 0 1) in
  let sample_mean = Stats.Summary.mean samples in
  let true_mean = Env.mean_latency env 0 1 in
  Alcotest.(check bool) "within 5%" true
    (Float.abs (sample_mean -. true_mean) /. true_mean < 0.05)

let test_env_time_series_stable_mean () =
  let env = make_env () in
  let rng = Prng.create 13 in
  let series = Env.time_series rng env 2 3 ~buckets:100 in
  Alcotest.(check int) "buckets" 100 (Array.length series);
  let m = Stats.Summary.mean series in
  let true_mean = Env.mean_latency env 2 3 in
  (* Per-bucket means wobble but stay near the link mean. *)
  Alcotest.(check bool) "stable" true (Float.abs (m -. true_mean) /. true_mean < 0.1)

let test_env_sub_env () =
  let env = make_env () in
  let sub = Env.sub_env env [| 5; 2; 9 |] in
  Alcotest.(check int) "count" 3 (Env.count sub);
  Alcotest.(check int) "host mapping" (Env.host env 5) (Env.host sub 0);
  Alcotest.(check (float 1e-12)) "mean mapping"
    (Env.mean_latency env 2 9) (Env.mean_latency sub 1 2)

let test_env_sub_env_rejects_duplicates () =
  let env = make_env () in
  Alcotest.check_raises "dup" (Invalid_argument "Env.sub_env: duplicate instance")
    (fun () -> ignore (Env.sub_env env [| 1; 1 |]))

let test_env_rack_locality_cheaper () =
  (* Aggregated over many allocations, same-rack links must be faster than
     cross-pod links on average. *)
  let rng = Prng.create 21 in
  let same_rack = ref [] and cross_pod = ref [] in
  for _ = 1 to 5 do
    let env = Env.allocate rng ec2 ~count:40 in
    for i = 0 to 39 do
      for j = 0 to 39 do
        if i <> j then begin
          let l = Env.mean_latency env i j in
          match Env.hop_count env i j with
          | 1 -> same_rack := l :: !same_rack
          | 5 -> cross_pod := l :: !cross_pod
          | _ -> ()
        end
      done
    done
  done;
  match (!same_rack, !cross_pod) with
  | [], _ | _, [] -> Alcotest.fail "expected both tiers in 5 allocations"
  | sr, cp ->
      let mean l = Stats.Summary.mean (Array.of_list l) in
      Alcotest.(check bool) "rack faster on average" true (mean sr < mean cp)

let test_provider_presets_distinct () =
  let e = Provider.get Provider.Ec2 and g = Provider.get Provider.Gce in
  Alcotest.(check bool) "different base" true (e.Provider.rack_rtt <> g.Provider.rack_rtt);
  Alcotest.(check string) "name" "ec2" (Provider.to_string Provider.Ec2);
  Alcotest.(check string) "name" "gce" (Provider.to_string Provider.Gce);
  Alcotest.(check string) "name" "rackspace" (Provider.to_string Provider.Rackspace)

let test_gce_tighter_than_ec2 () =
  (* Fig. 18 vs Fig. 1: GCE heterogeneity is smaller than EC2's. Compare
     the coefficient of variation of link means. *)
  let rng = Prng.create 31 in
  let cv provider =
    let env = Env.allocate rng (Provider.get provider) ~count:50 in
    let lats = ref [] in
    for i = 0 to 49 do
      for j = 0 to 49 do
        if i <> j then lats := Env.mean_latency env i j :: !lats
      done
    done;
    let a = Array.of_list !lats in
    Stats.Summary.stddev a /. Stats.Summary.mean a
  in
  Alcotest.(check bool) "gce tighter" true (cv Provider.Gce < cv Provider.Ec2)

let qcheck_props =
  [
    QCheck.Test.make ~name:"allocation means positive and asymmetric-safe" ~count:20
      QCheck.(pair small_int (int_range 2 30))
      (fun (seed, count) ->
        let env = Env.allocate (Prng.create seed) ec2 ~count in
        let ok = ref true in
        for i = 0 to count - 1 do
          for j = 0 to count - 1 do
            let l = Env.mean_latency env i j in
            if i = j then (if l <> 0.0 then ok := false)
            else if not (l > 0.0 && Float.is_finite l) then ok := false
          done
        done;
        !ok);
    QCheck.Test.make ~name:"hop count in {1,3,5} for distinct instances" ~count:20
      QCheck.(pair small_int (int_range 2 30))
      (fun (seed, count) ->
        let env = Env.allocate (Prng.create seed) ec2 ~count in
        let ok = ref true in
        for i = 0 to count - 1 do
          for j = 0 to count - 1 do
            if i <> j then
              match Env.hop_count env i j with
              | 1 | 3 | 5 -> ()
              | _ -> ok := false
          done
        done;
        !ok);
  ]

let suite =
  [
    Alcotest.test_case "topology counts" `Quick test_topology_counts;
    Alcotest.test_case "topology hops" `Quick test_topology_hops;
    Alcotest.test_case "topology hops symmetric" `Quick test_topology_hops_symmetric;
    Alcotest.test_case "topology ip distinct" `Quick test_topology_ip_addresses_distinct;
    Alcotest.test_case "topology ip structure" `Quick test_topology_ip_structure;
    Alcotest.test_case "topology rejects bad dims" `Quick test_topology_rejects_bad_dims;
    Alcotest.test_case "env distinct hosts" `Quick test_env_distinct_hosts;
    Alcotest.test_case "env mean properties" `Quick test_env_mean_properties;
    Alcotest.test_case "env deterministic" `Quick test_env_means_deterministic;
    Alcotest.test_case "env heterogeneity" `Quick test_env_heterogeneity;
    Alcotest.test_case "env samples center on mean" `Quick test_env_sample_rtt_centers_on_mean;
    Alcotest.test_case "env time series stable" `Quick test_env_time_series_stable_mean;
    Alcotest.test_case "env sub_env" `Quick test_env_sub_env;
    Alcotest.test_case "env sub_env rejects dups" `Quick test_env_sub_env_rejects_duplicates;
    Alcotest.test_case "rack locality cheaper" `Quick test_env_rack_locality_cheaper;
    Alcotest.test_case "provider presets distinct" `Quick test_provider_presets_distinct;
    Alcotest.test_case "gce tighter than ec2" `Quick test_gce_tighter_than_ec2;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props
