test/test_failure.ml: Alcotest Array Brute_force Cloudia Cloudsim Cost Cp_solver Float Graphs Greedy List Matrix_io Netmeasure Printf Prng Random_search Reduction Types
