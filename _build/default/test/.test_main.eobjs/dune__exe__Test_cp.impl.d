test/test_cp.ml: Alcotest Array Cp Csp Digraph Domain Graphs Hashtbl List Prng QCheck QCheck_alcotest Search Templates
