test/test_solvers.ml: Advisor Alcotest Array Brute_force Cloudia Cloudsim Cost Cp_solver Float Graphs Greedy Hashtbl List Metrics Mip_solver Printf Prng Random_search Reduction Types Unix
