test/test_lp.ml: Alcotest Array Float List Lp Mip Model Printf Prng QCheck QCheck_alcotest Simplex
