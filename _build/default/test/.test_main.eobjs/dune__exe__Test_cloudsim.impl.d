test/test_cloudsim.ml: Alcotest Array Cloudsim Env Float Hashtbl List Prng Provider QCheck QCheck_alcotest Stats Topology
