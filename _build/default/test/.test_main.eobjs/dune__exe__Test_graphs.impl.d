test/test_graphs.ml: Alcotest Array Digraph Float Graphs Labeling List Matching Printf Prng QCheck QCheck_alcotest Scc Templates
