test/test_stats.ml: Alcotest Array Cdf Correlation Error Float Histogram Kmeans1d List Printf Prng QCheck QCheck_alcotest Stats Summary
