test/test_workloads.ml: Alcotest Array Cloudia Cloudsim Float Graphs Printf Prng Workloads
