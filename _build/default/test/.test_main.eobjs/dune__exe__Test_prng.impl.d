test/test_prng.ml: Alcotest Array Float Hashtbl List Prng QCheck QCheck_alcotest Stats Summary
