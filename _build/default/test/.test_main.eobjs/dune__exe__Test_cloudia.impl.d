test/test_cloudia.ml: Alcotest Array Brute_force Cloudia Cloudsim Clustering Cost Float Graphs Greedy List Metrics Option Printf Prng QCheck QCheck_alcotest Random_search Types Unix
