test/test_netmeasure.ml: Alcotest Array Cloudsim Float List Netmeasure Printf Prng Stats
