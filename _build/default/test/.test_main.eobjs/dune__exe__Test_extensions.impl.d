test/test_extensions.ml: Alcotest Anneal Array Bandwidth Brute_force Cloudia Cloudsim Cost Cp_solver Float Graphs Hashtbl List Mip_solver Printf Prng Redeploy Stats String Types Weighted Workloads
