test/test_consistency.ml: Advisor Alcotest Anneal Array Brute_force Cloudia Cloudsim Cost Cp_solver Float Graphs List Metrics Netmeasure Printf Prng QCheck QCheck_alcotest Types Weighted
