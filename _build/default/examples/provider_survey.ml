(* Survey of latency heterogeneity and mean-latency stability across the
   three public-cloud presets, reproducing the observations behind Figs. 1,
   2, 18, 19, 20, 21.

   Run with:  dune exec examples/provider_survey.exe *)

let survey provider_name count =
  let provider = Cloudsim.Provider.get provider_name in
  let rng = Prng.create 1234 in
  let env = Cloudsim.Env.allocate rng provider ~count in
  let lats = ref [] in
  for i = 0 to count - 1 do
    for j = 0 to count - 1 do
      if i <> j then lats := Cloudsim.Env.mean_latency env i j :: !lats
    done
  done;
  let arr = Array.of_list !lats in
  let s = Stats.Summary.of_array arr in
  let cdf = Stats.Cdf.of_samples arr in
  Printf.printf "%s (%d instances, %d links)\n"
    (Cloudsim.Provider.to_string provider_name)
    count (Array.length arr);
  Printf.printf "  mean latency: mean=%.3f p10=%.3f p50=%.3f p90=%.3f ms\n" s.Stats.Summary.mean
    (Stats.Cdf.inverse cdf 0.10) s.Stats.Summary.p50 (Stats.Cdf.inverse cdf 0.90);
  (* Stability of four representative links over 60 one-hour buckets. *)
  Printf.printf "  stability over 60 h (per-link mean of hourly means ± sd):\n";
  for link = 0 to 3 do
    let i = link and j = link + 4 in
    let series = Cloudsim.Env.time_series rng env i j ~buckets:60 in
    let m = Stats.Summary.mean series and sd = Stats.Summary.stddev series in
    Printf.printf "    link %d->%d: %.3f ± %.3f ms (true mean %.3f)\n" i j m sd
      (Cloudsim.Env.mean_latency env i j)
  done;
  print_newline ()

let () =
  Printf.printf "Latency heterogeneity and stability across providers\n\n";
  survey Cloudsim.Provider.Ec2 100;
  survey Cloudsim.Provider.Gce 50;
  survey Cloudsim.Provider.Rackspace 50
