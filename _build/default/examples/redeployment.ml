(* Iterative re-deployment under changing network conditions (Sect. 2.2.1
   of the paper): ClouDiA re-measures, re-optimizes, and migrates the
   application whenever the projected saving over the remaining horizon
   exceeds the one-off migration cost.

   Run with:  dune exec examples/redeployment.exe *)

let () =
  let provider = Cloudsim.Provider.get Cloudsim.Provider.Ec2 in
  let graph = Graphs.Templates.mesh2d ~rows:4 ~cols:4 in
  Printf.printf
    "Re-deployment of a 4x4 mesh application over 20 epochs.\n\
     Network conditions change with 40%% probability per epoch\n\
     (20%% of links re-leveled each time).\n\n";
  List.iter
    (fun migration_cost ->
      let config =
        {
          Cloudia.Redeploy.default_config with
          Cloudia.Redeploy.epochs = 20;
          change_prob = 0.4;
          migration_cost;
          solver_budget = 1.0;
        }
      in
      let s =
        Cloudia.Redeploy.simulate ~config (Prng.create 7) provider ~graph
          ~over_allocation:0.2
      in
      Printf.printf
        "migration cost %.2f: %2d migrations | adaptive %.2f | static %.2f | oracle %.2f\n"
        migration_cost s.Cloudia.Redeploy.migrations s.Cloudia.Redeploy.adaptive_total
        s.Cloudia.Redeploy.static_total s.Cloudia.Redeploy.oracle_total)
    [ 0.1; 0.5; 2.0; 10.0 ];
  Printf.printf
    "\nCheap migration tracks the oracle. As migration gets expensive the policy\n\
     migrates less; it can even lose to the static deployment when a costly\n\
     migration is invalidated by the next network change - the policy assumes\n\
     current conditions persist, which Sect. 2.2.1 notes is all a tenant can do.\n"
