examples/weighted_mesh.mli:
