examples/behavioral_sim.ml: Cloudia Cloudsim List Printf Prng Workloads
