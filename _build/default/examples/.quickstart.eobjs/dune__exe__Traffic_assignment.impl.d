examples/traffic_assignment.ml: Array Cloudia Cloudsim Graphs List Printf Prng Workloads
