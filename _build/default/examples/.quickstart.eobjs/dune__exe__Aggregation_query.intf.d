examples/aggregation_query.mli:
