examples/weighted_mesh.ml: Cloudia Cloudsim Graphs Printf Prng
