examples/aggregation_query.ml: Cloudia Cloudsim Graphs Printf Prng Workloads
