examples/provider_survey.ml: Array Cloudsim Printf Prng Stats
