examples/kv_store.ml: Cloudia Cloudsim Printf Prng Workloads
