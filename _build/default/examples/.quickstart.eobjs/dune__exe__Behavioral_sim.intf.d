examples/behavioral_sim.mli:
