examples/quickstart.ml: Advisor Cloudia Cloudsim Cost List Printf Prng String Workloads
