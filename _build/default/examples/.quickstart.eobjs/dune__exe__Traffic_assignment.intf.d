examples/traffic_assignment.mli:
