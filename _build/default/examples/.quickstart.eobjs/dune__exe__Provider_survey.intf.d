examples/provider_survey.mli:
