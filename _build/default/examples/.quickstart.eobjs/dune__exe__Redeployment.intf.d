examples/redeployment.mli:
