examples/quickstart.mli:
