examples/redeployment.ml: Cloudia Cloudsim Graphs List Printf Prng
