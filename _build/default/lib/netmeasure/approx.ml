let ip_to_int (a, b, c, d) = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let ip_distance ?(granularity = 8) env i j =
  if granularity < 1 || granularity >= 32 then
    invalid_arg "Approx.ip_distance: granularity out of [1,31]";
  if i = j then 0
  else begin
    let x = ip_to_int (Cloudsim.Env.ip_address env i) in
    let y = ip_to_int (Cloudsim.Env.ip_address env j) in
    let diff = x lxor y in
    (* Longest shared prefix length in bits. *)
    let shared = ref 0 in
    while !shared < 32 && diff land (1 lsl (31 - !shared)) = 0 do
      incr shared
    done;
    (* Distance counts granularity-sized blocks not fully shared. *)
    let blocks = (32 + granularity - 1) / granularity in
    blocks - (!shared / granularity)
  end

let hop_count env i j = Cloudsim.Env.hop_count env i j

let latency_by_group env ~group =
  let n = Cloudsim.Env.count env in
  let buckets = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let g = group i j in
        let cur = try Hashtbl.find buckets g with Not_found -> [] in
        Hashtbl.replace buckets g (Cloudsim.Env.mean_latency env i j :: cur)
      end
    done
  done;
  Hashtbl.fold (fun g lats acc -> (g, lats) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (g, lats) ->
         let a = Array.of_list lats in
         Array.sort compare a;
         (g, a))

let monotonicity_violations groups =
  (* Count cross-group inversions: a link in a lower group with strictly
     higher latency than a link in a higher group. O(total²) is fine at
     the sizes used. *)
  let rec go acc = function
    | [] -> acc
    | (_, low) :: rest ->
        let acc =
          List.fold_left
            (fun acc (_, high) ->
              Array.fold_left
                (fun acc l ->
                  acc + Array.fold_left (fun c h -> if l > h then c + 1 else c) 0 high)
                acc low)
            acc rest
        in
        go acc rest
  in
  go 0 groups
