(** Cheap network-distance approximations (Appendix 2).

    The paper evaluated IP distance and hop count as free substitutes for
    RTT measurement and found both non-monotone in actual latency; these
    oracles let the benchmarks reproduce that negative result (Figs. 16,
    17). *)

val ip_distance : ?granularity:int -> Cloudsim.Env.t -> int -> int -> int
(** [ip_distance env i j] compares the two instances' internal IPv4
    addresses [granularity] bits at a time (default 8): two instances
    sharing a /24 but not longer have distance 1, sharing /16 only have
    distance 2, /8 only distance 3, nothing distance 4. Symmetric;
    [0] for an instance with itself. *)

val hop_count : Cloudsim.Env.t -> int -> int -> int
(** Router hops between two instances (what traceroute TTLs would show). *)

val latency_by_group :
  Cloudsim.Env.t -> group:(int -> int -> int) -> (int * float array) list
(** [latency_by_group env ~group] buckets every ordered instance pair by
    [group i j] and returns, per bucket in increasing group value, the
    ascending mean latencies of its links — exactly the series plotted in
    Figs. 16 and 17 (links sorted by latency within each group). *)

val monotonicity_violations : (int * float array) list -> int
(** Number of link pairs (a, b) with [group a < group b] but
    [latency a > latency b] — the quantitative form of "such monotonicity
    does not always hold". *)
