(** Pairwise mean-latency measurement schemes (Sect. 5 of the paper).

    Three organizations of the same task — estimate the full n×n mean RTT
    matrix of an allocation:

    - {b Token passing}: a unique token serializes all probes, so no two
      messages are ever in flight together. Interference-free but serial:
      measurement time grows as n² × samples.
    - {b Uncoordinated}: every instance independently probes a random
      destination each round. Fully parallel, but probes collide — several
      sources may pick one destination, and a replying instance may also be
      sending — inflating observed RTTs unevenly across links.
    - {b Staged}: a coordinator partitions instances into disjoint pairs
      each stage and each pair exchanges [ks] consecutive probes. Parallel
      (n/2 probes in flight) yet interference-free, because no instance is
      ever in more than one conversation.

    The interference model: a probe's observed RTT is the pair's jittered
    RTT plus an additive queueing delay of 0.30 ms per extra probe
    converging on the destination, plus 0.05 ms when the destination is
    itself mid-probe. Token passing and staged never trigger either term,
    matching the paper's design goal of measuring links "without
    interference"; uncoordinated accumulates a per-link bias that does not
    average out (the Fig. 4 effect). *)

type t = {
  means : float array array;   (** measured mean RTT per ordered pair (ms);
                                   [nan] where a pair was never sampled *)
  samples : int array array;   (** per-pair sample counts *)
  sim_seconds : float;         (** simulated wall-clock cost of measuring *)
}

val token_passing : Prng.t -> Cloudsim.Env.t -> samples_per_pair:int -> t
(** Visit every ordered pair round-robin, [samples_per_pair] times. *)

val uncoordinated : Prng.t -> Cloudsim.Env.t -> rounds:int -> t
(** [rounds] rounds in which every instance probes one uniformly random
    other instance. Colliding probes are inflated per the model above. *)

val staged : Prng.t -> Cloudsim.Env.t -> ks:int -> stages:int -> t
(** [stages] coordinator-chosen random perfect matchings; each matched pair
    exchanges [ks] back-to-back probes per stage. *)

val staged_time_for : n:int -> reference_minutes:float -> float
(** Measurement-time budget scaling rule from Sect. 6.2: the staged
    approach probes ⌊n/2⌋ pairs in parallel out of O(n²), so the paper
    adjusts the 5-minute budget for 100 instances linearly:
    [5 · n / 100] minutes. Returned in minutes. *)

val link_vector : t -> float array
(** Flatten the measured means over ordered pairs (i ≠ j), row-major —
    the latency-vector form used for error comparison (Figs. 4–5).
    Unsampled pairs contribute [nan]. *)
