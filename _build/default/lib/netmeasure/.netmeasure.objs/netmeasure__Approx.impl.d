lib/netmeasure/approx.ml: Array Cloudsim Hashtbl List
