lib/netmeasure/schemes.ml: Array Cloudsim Prng
