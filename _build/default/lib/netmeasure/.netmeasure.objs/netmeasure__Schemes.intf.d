lib/netmeasure/schemes.mli: Cloudsim Prng
