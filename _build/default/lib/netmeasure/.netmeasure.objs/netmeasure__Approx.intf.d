lib/netmeasure/approx.mli: Cloudsim
