(** Deterministic pseudo-random number generation.

    All stochastic components of this repository draw randomness through this
    module so that experiments are reproducible bit-for-bit from a seed. The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    statistically solid 64-bit generator that supports cheap stream
    splitting, which we use to give independent substreams to independent
    simulation components. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator determined by [seed]. Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). Requires [bound > 0.]. *)

val uniform : t -> float
(** [uniform t] is uniform in \[0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val normal : t -> mean:float -> sd:float -> float
(** Gaussian via Box–Muller. Requires [sd >= 0.]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp (normal ~mean:mu ~sd:sigma)]. Always positive. *)

val exponential : t -> rate:float -> float
(** Exponential with the given [rate] (mean [1/rate]). Requires [rate > 0.]. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto type-I: support \[scale, ∞), tail exponent [shape].
    Requires [scale > 0.] and [shape > 0.]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of \[0, n). *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on
    an empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct values uniformly
    from \[0, n), in random order. Requires [0 <= k <= n]. *)
