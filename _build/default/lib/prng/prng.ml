type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance by the golden gamma, then mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let uniform t =
  (* 53 random bits into [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let float t bound =
  if bound <= 0. then invalid_arg "Prng.float: bound must be positive";
  uniform t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let normal t ~mean ~sd =
  if sd < 0. then invalid_arg "Prng.normal: sd must be non-negative";
  (* Box–Muller; guard against log 0. *)
  let u1 = 1.0 -. uniform t in
  let u2 = uniform t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (sd *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mean:mu ~sd:sigma)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  -.log (1.0 -. uniform t) /. rate

let pareto t ~scale ~shape =
  if scale <= 0. || shape <= 0. then invalid_arg "Prng.pareto: parameters must be positive";
  scale /. ((1.0 -. uniform t) ** (1.0 /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let choice t a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  let a = permutation t n in
  Array.sub a 0 k
