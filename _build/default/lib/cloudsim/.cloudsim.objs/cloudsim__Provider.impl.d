lib/cloudsim/provider.ml: Topology
