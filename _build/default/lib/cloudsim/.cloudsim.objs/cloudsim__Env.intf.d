lib/cloudsim/env.mli: Prng Provider
