lib/cloudsim/topology.ml:
