lib/cloudsim/topology.mli:
