lib/cloudsim/env.ml: Array Float Hashtbl Prng Provider Topology
