lib/cloudsim/provider.mli: Topology
