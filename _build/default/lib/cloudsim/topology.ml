type t = {
  hosts_per_rack : int;
  racks_per_pod : int;
  pods : int;
}

type tier = Same_host | Same_rack | Same_pod | Cross_pod

let create ~hosts_per_rack ~racks_per_pod ~pods =
  if hosts_per_rack <= 0 || racks_per_pod <= 0 || pods <= 0 then
    invalid_arg "Topology.create: all dimensions must be positive";
  { hosts_per_rack; racks_per_pod; pods }

let host_count t = t.hosts_per_rack * t.racks_per_pod * t.pods

let check t h =
  if h < 0 || h >= host_count t then invalid_arg "Topology: host out of range"

let rack_of t h =
  check t h;
  h / t.hosts_per_rack

let pod_of t h =
  check t h;
  h / (t.hosts_per_rack * t.racks_per_pod)

let tier t a b =
  if a = b then Same_host
  else if rack_of t a = rack_of t b then Same_rack
  else if pod_of t a = pod_of t b then Same_pod
  else Cross_pod

let hop_count t a b =
  match tier t a b with
  | Same_host -> 0
  | Same_rack -> 1
  | Same_pod -> 3
  | Cross_pod -> 5

let ip_address t h =
  check t h;
  if t.racks_per_pod > 254 || t.hosts_per_rack > 254 then
    invalid_arg "Topology.ip_address: topology too wide for /8 addressing";
  let pod = pod_of t h in
  let rack_in_pod = rack_of t h mod t.racks_per_pod in
  let host_in_rack = h mod t.hosts_per_rack in
  (10, pod + 1, rack_in_pod + 1, host_in_rack + 1)
