(** Physical datacenter topology.

    A three-tier tree, the structure the paper cites as typical of current
    clouds (Sect. 3.1, citing Benson et al.): hosts plug into top-of-rack
    switches, racks aggregate into pods, pods connect through a core layer.
    The simulator never exposes this structure to the deployment advisor —
    the paper's point is precisely that tenants cannot observe it — but the
    latency model, hop counts and IP addressing all derive from it. *)

type t

val create : hosts_per_rack:int -> racks_per_pod:int -> pods:int -> t
(** All three arguments must be positive. *)

val host_count : t -> int

val rack_of : t -> int -> int
(** Global rack index of a host. *)

val pod_of : t -> int -> int
(** Pod index of a host. *)

val hop_count : t -> int -> int -> int
(** Router hops between two hosts: [0] on the same host, [1] within a rack
    (through the ToR switch), [3] across racks within a pod, [5] across
    pods (through the core). These are the distance tiers an EC2-style tree
    exhibits; the paper's Fig. 17 observes hop counts 0, 1 and 3 from
    traceroute TTLs — our tiers are the same ordering one level deeper. *)

type tier = Same_host | Same_rack | Same_pod | Cross_pod

val tier : t -> int -> int -> tier
(** Locality tier of a host pair. *)

val ip_address : t -> int -> int * int * int * int
(** Internal IPv4 address of a host, [10.pod.rack_in_pod.host_in_rack] —
    mirroring EC2's 10.0.0.0/8 internal addressing that Appendix 2 probes
    with IP-distance. Requires racks_per_pod and hosts_per_rack ≤ 254. *)
