(** An allocated set of cloud instances and its latency behaviour.

    [Env.allocate] plays the role of [ec2-run-instance]: it places the
    requested number of instances on distinct hosts, non-contiguously —
    runs of instances land in one rack, then the allocator jumps to another
    rack, as shared-tenancy fragmentation forces real providers to do. The
    resulting per-pair mean latencies are fixed for the lifetime of the
    environment (the paper's mean-stability observation, Fig. 2), while
    individual RTT samples jitter around the mean (lognormal, matching the
    heavy-tailed jitter reported for EC2). *)

type t

val allocate : Prng.t -> Provider.t -> count:int -> t
(** Allocate [count] instances. Raises [Invalid_argument] if the topology
    cannot host them. Instance indices are [0 .. count-1] in allocation
    order — the order the provider's API would return, which the paper's
    "default deployment" uses verbatim. *)

val count : t -> int

val provider : t -> Provider.t

val host : t -> int -> int
(** Physical host of an instance (not visible to the advisor; used by tests
    and by the hop-count / IP oracles of Appendix 2). *)

val mean_latency : t -> int -> int -> float
(** True mean RTT in milliseconds between two distinct instances.
    Asymmetric in general; [mean_latency t i i = 0.]. *)

val mean_matrix : t -> float array array
(** Full ground-truth mean matrix (fresh copy). *)

val bandwidth : t -> int -> int -> float
(** Achievable bandwidth between two instances in Gbit/s (symmetric;
    [infinity] for an instance with itself). Derived from the locality
    tier's nominal rate — cross-pod links are oversubscribed — times a
    persistent per-pair factor. Supports the bandwidth deployment
    criterion the paper names as future work (Sect. 8). *)

val sample_rtt : Prng.t -> t -> int -> int -> float
(** One observed RTT: the pair's mean scaled by multiplicative lognormal
    jitter. *)

val hop_count : t -> int -> int -> int
(** Router hops between two instances' hosts. *)

val ip_address : t -> int -> int * int * int * int
(** Internal IPv4 address of an instance's host. *)

val time_series : Prng.t -> t -> int -> int -> buckets:int -> float array
(** [time_series rng t i j ~buckets] are per-bucket observed mean latencies
    for link (i, j) over consecutive time buckets: the true mean plus small
    relative drift and rare transient spikes. Means are stable by
    construction, reproducing Figs. 2, 19, 21. *)

val perturb : Prng.t -> t -> fraction:float -> magnitude:float -> t
(** [perturb rng t ~fraction ~magnitude] models a network-condition change
    (Sect. 2.2.1): each unordered instance pair independently has its mean
    latency re-leveled with probability [fraction], multiplying both
    directions by a lognormal factor of σ [magnitude]. Returns a new
    environment; [t] is unchanged. Host placement and bandwidths are
    preserved. *)

val sub_env : t -> int array -> t
(** [sub_env t instances] restricts the environment to the given distinct
    instance indices (re-indexed 0..k-1 in the given order): the paper's
    scalability experiment draws random subsets of a 100-instance
    allocation (Fig. 8). *)
