(** NP-hardness reductions (Appendix 1).

    Subgraph isomorphism reduces to both deployment problems: give every
    target edge cost 1 and every non-edge a cost that any embedding must
    avoid. Solving the resulting deployment problem then decides SIP.
    These constructions back the paper's Theorems 1 and 4, and give the
    test suite an independent oracle: the deployment solvers must find a
    cost-1 (resp. ≤ |E1|) plan exactly when an embedding exists. *)

val llndp_of_sip :
  pattern:Graphs.Digraph.t -> target:Graphs.Digraph.t -> Types.problem
(** Theorem 1 construction: [CL(j,j') = 1] if [(j,j')] is a target edge,
    [2] otherwise. The pattern embeds into the target iff the optimal
    longest-link cost is 1 (provided the pattern has at least one edge). *)

val lpndp_of_sip :
  pattern:Graphs.Digraph.t -> target:Graphs.Digraph.t -> Types.problem
(** Theorem 4 construction: non-edges cost [|E1| + 1]. The pattern (a DAG)
    embeds iff the optimal longest-path cost is at most [|E1|]. *)

val embeds : pattern:Graphs.Digraph.t -> target:Graphs.Digraph.t -> Types.plan -> bool
(** [embeds ~pattern ~target plan] checks that [plan] is an isomorphism
    witness: injective and edge-preserving. *)

val distinct_costs : Prng.t -> Types.problem -> Types.problem
(** Perturb a problem's off-diagonal costs by tiny distinct amounts so all
    values differ — the premise of the inapproximability theorems
    (Theorems 2–3 assume all communication costs distinct, "fairly
    realistic [as] costs are experimentally measured reals"). Preserves
    the cost ordering of links whose costs differed by more than 1e-6. *)
