(** Weighted communication graphs.

    "As future work, we plan to extend our formulation to support weighted
    communication graphs" (Sect. 8). A weight on edge [(i, i')] scales that
    link's contribution to the deployment cost — modeling, e.g., message
    frequency or size differences between node pairs (the aggregation
    workload's messages grow toward the root; a mesh boundary exchanges
    less state than the interior).

    The weighted deployment costs generalize Classes 1 and 2:
    - weighted longest link: [max w_ii' · CL(D i, D i')]
    - weighted longest path: [max over paths Σ w_ii' · CL(D i, D i')]

    All solver families support them: CP and MIP natively (via their
    [?edge_weight] parameters), the lightweight baselines through the
    generic plan-cost interface, and G2 through a weight-aware variant of
    its extension cost. *)

type t
(** A deployment problem plus positive per-edge weights. *)

val make : Types.problem -> weight:(int -> int -> float) -> t
(** [make p ~weight] attaches weights; [weight] is consulted once per
    communication edge and must be positive there. Raises
    [Invalid_argument] on a non-positive weight. *)

val of_assoc : Types.problem -> default:float -> ((int * int) * float) list -> t
(** Weights from an association list over edges; missing edges get
    [default]. Entries for non-edges are rejected. *)

val problem : t -> Types.problem

val weight : t -> int -> int -> float
(** Weight of a communication edge; 1.0 for pairs that are not edges. *)

val longest_link : t -> Types.plan -> float
val longest_path : t -> Types.plan -> float

val eval : Cost.objective -> t -> Types.plan -> float

val g2 : t -> Types.plan
(** Weight-aware refinement of Algorithm 2: each candidate extension is
    costed by the worst {e weighted} link it would add. *)

val solve_cp : ?options:Cp_solver.options -> Prng.t -> t -> Cp_solver.result
(** Weighted longest-link via the iterated-threshold CP scheme. *)

val solve_mip : ?options:Mip_solver.options -> Cost.objective -> Prng.t -> t -> Mip_solver.result
(** Weighted MIP for either objective. *)

val solve_anneal : ?options:Anneal.options -> Cost.objective -> Prng.t -> t -> Anneal.result
(** Simulated annealing under the weighted objective. *)

val r1 : Prng.t -> Cost.objective -> t -> trials:int -> Types.plan * float
(** Best of N random plans under the weighted objective. *)
