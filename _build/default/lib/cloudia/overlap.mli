(** Overlapping ClouDiA with application execution (Sect. 2.2.2).

    The paper sketches an alternative to idling during measurement:
    "Instead of wasting idle compute cycles while ClouDiA performs network
    measurements and searches for a deployment plan, we could instead begin
    execution of the application over the initially allocated instances, in
    parallel with ClouDiA", at the price of (a) interference between
    measurement probes and application traffic, and (b) a state-migration
    cost when switching to the optimized plan.

    This module quantifies that trade for a tick-based application:

    - {b Sequential} (the paper's Fig. 3 architecture): measure for
      [measurement_seconds], then run all [total_ticks] under the
      optimized plan.
    - {b Overlapped}: run under the default plan during measurement —
      slowed by [interference] and with measurement noise [noise_sigma]
      degrading the matrix the solver sees — then pay
      [migration_seconds] and finish under the (slightly worse)
      optimized plan.

    Overlap wins exactly when the work done during measurement outweighs
    the migration cost plus the quality loss from noisy measurements —
    the condition Sect. 2.2.2 says must be "carefully controlled". *)

type config = {
  measurement_seconds : float;  (** length of the measurement phase *)
  interference : float;         (** relative app slowdown while probing,
                                    e.g. 0.15 = 15 % slower ticks *)
  noise_sigma : float;          (** extra lognormal σ on measured means
                                    caused by application traffic *)
  migration_seconds : float;    (** cost of moving state to the new plan *)
  total_ticks : int;            (** application work to complete *)
  solver_budget : float;        (** CP budget for both variants, seconds *)
}

val default_config : config

type analysis = {
  sequential_seconds : float;    (** measure idle, then run optimally *)
  overlapped_seconds : float;    (** run during measurement, migrate, finish *)
  sequential_plan_cost : float;  (** longest link of the clean-measurement plan *)
  overlapped_plan_cost : float;  (** longest link of the noisy-measurement plan *)
  ticks_during_measurement : int; (** work completed while measuring *)
}

val analyze :
  ?config:config ->
  Prng.t ->
  Cloudsim.Provider.t ->
  rows:int ->
  cols:int ->
  over_allocation:float ->
  analysis
(** Compare both architectures on a [rows]×[cols] behavioral mesh. *)

val migration_headroom : analysis -> float
(** [sequential_seconds − overlapped_seconds]: how much additional
    migration cost the overlapped architecture could absorb before losing
    its advantage (the overlapped total is linear in the migration cost
    with unit slope). Positive means overlap currently wins — the
    condition Sect. 2.2.2 asks to check before adopting the strategy. *)
