type t = {
  rounded : float array array;
  levels : float array;
}

let off_diagonal costs =
  let m = Array.length costs in
  let out = ref [] in
  for j = 0 to m - 1 do
    for j' = 0 to m - 1 do
      if j <> j' then out := costs.(j).(j') :: !out
    done
  done;
  Array.of_list !out

let cluster ~k costs =
  let values = off_diagonal costs in
  if Array.length values = 0 then { rounded = Array.map Array.copy costs; levels = [||] }
  else begin
    let result = Stats.Kmeans1d.cluster ~k values in
    let rounded =
      Array.mapi
        (fun j row ->
          Array.mapi
            (fun j' c -> if j = j' then 0.0 else Stats.Kmeans1d.assign result c)
            row)
        costs
    in
    { rounded; levels = Array.copy result.Stats.Kmeans1d.centers }
  end

let none costs =
  let values = off_diagonal costs in
  let distinct =
    let sorted = Array.copy values in
    Array.sort compare sorted;
    let out = ref [] in
    Array.iter
      (fun v -> match !out with x :: _ when x = v -> () | _ -> out := v :: !out)
      sorted;
    Array.of_list (List.rev !out)
  in
  { rounded = Array.map Array.copy costs; levels = distinct }

let thresholds_below t cost =
  Array.fold_left (fun acc level -> if level < cost then level :: acc else acc) [] t.levels
