type objective = Longest_link | Longest_path

let objective_to_string = function
  | Longest_link -> "longest-link"
  | Longest_path -> "longest-path"

let longest_link_witness (t : Types.problem) plan =
  let best = ref 0.0 and witness = ref None in
  Array.iter
    (fun (i, i') ->
      let c = t.Types.costs.(plan.(i)).(plan.(i')) in
      if c > !best then begin
        best := c;
        witness := Some (i, i')
      end)
    (Graphs.Digraph.edges t.Types.graph);
  (!best, !witness)

let longest_link t plan = fst (longest_link_witness t plan)

let longest_path (t : Types.problem) plan =
  Graphs.Digraph.longest_path t.Types.graph ~weight:(fun i i' ->
      t.Types.costs.(plan.(i)).(plan.(i')))

let eval = function
  | Longest_link -> longest_link
  | Longest_path -> longest_path

let improvement ~default ~optimized =
  if default = 0.0 then 0.0 else (default -. optimized) /. default *. 100.0
