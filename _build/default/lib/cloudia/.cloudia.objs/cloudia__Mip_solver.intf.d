lib/cloudia/mip_solver.mli: Prng Types
