lib/cloudia/matrix_io.ml: Array Buffer Float In_channel List Option Printf String
