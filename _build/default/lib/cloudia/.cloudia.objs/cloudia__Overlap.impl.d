lib/cloudia/overlap.ml: Array Cloudsim Cost Cp_solver Float Graphs Prng Types
