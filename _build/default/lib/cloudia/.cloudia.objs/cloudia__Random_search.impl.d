lib/cloudia/random_search.ml: Array Cost Domain Prng Types Unix
