lib/cloudia/reduction.ml: Array Graphs Hashtbl Prng Types
