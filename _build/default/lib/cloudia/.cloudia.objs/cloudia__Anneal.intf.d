lib/cloudia/anneal.mli: Cost Prng Types
