lib/cloudia/matrix_io.mli:
