lib/cloudia/cp_solver.mli: Prng Types
