lib/cloudia/types.ml: Array Float Format Graphs Hashtbl Prng
