lib/cloudia/anneal.ml: Array Cost Prng Types Unix
