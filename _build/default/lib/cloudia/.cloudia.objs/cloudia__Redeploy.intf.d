lib/cloudia/redeploy.mli: Cloudsim Graphs Prng
