lib/cloudia/metrics.mli: Cloudsim Prng
