lib/cloudia/greedy.mli: Types
