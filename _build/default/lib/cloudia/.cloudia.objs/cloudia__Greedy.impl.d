lib/cloudia/greedy.ml: Array Float Graphs Types
