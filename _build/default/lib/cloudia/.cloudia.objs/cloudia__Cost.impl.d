lib/cloudia/cost.ml: Array Graphs Types
