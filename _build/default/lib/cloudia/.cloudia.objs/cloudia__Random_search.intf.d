lib/cloudia/random_search.mli: Cost Prng Types
