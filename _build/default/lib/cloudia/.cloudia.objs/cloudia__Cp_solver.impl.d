lib/cloudia/cp_solver.ml: Array Clustering Cp Float Graphs Hashtbl List Random_search Types Unix
