lib/cloudia/brute_force.mli: Cost Types
