lib/cloudia/mip_solver.ml: Array Clustering Float Graphs List Lp Printf Random_search Types Unix
