lib/cloudia/clustering.ml: Array List Stats
