lib/cloudia/types.mli: Format Graphs Prng
