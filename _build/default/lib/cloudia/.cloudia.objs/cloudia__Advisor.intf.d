lib/cloudia/advisor.mli: Anneal Cloudsim Cost Cp_solver Graphs Metrics Mip_solver Prng Types
