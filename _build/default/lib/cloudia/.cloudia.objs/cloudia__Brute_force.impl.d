lib/cloudia/brute_force.ml: Array Cost Float Graphs Types
