lib/cloudia/redeploy.ml: Cloudsim Cost Cp_solver Float Graphs List Prng Types
