lib/cloudia/bandwidth.ml: Array Cloudsim Cp_solver Float Graphs Types
