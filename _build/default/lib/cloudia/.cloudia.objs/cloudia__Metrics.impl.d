lib/cloudia/metrics.ml: Array Cloudsim Stats
