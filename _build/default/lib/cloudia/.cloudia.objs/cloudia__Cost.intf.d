lib/cloudia/cost.mli: Types
