lib/cloudia/weighted.mli: Anneal Cost Cp_solver Mip_solver Prng Types
