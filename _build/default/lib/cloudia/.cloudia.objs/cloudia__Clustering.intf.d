lib/cloudia/clustering.mli:
