lib/cloudia/overlap.mli: Cloudsim Prng
