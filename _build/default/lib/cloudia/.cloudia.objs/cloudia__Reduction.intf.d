lib/cloudia/reduction.mli: Graphs Prng Types
