lib/cloudia/advisor.ml: Anneal Cloudsim Cost Cp_solver Float Graphs Greedy Metrics Mip_solver Netmeasure Printf Random_search Types Unix
