lib/cloudia/bandwidth.mli: Cloudsim Cp_solver Graphs Prng Types
