lib/cloudia/weighted.ml: Anneal Array Cost Cp_solver Float Graphs Hashtbl List Mip_solver Random_search Types
