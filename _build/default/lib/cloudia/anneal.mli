(** Simulated-annealing deployment search.

    A lightweight anytime solver that sits between the paper's randomized
    baselines (R1/R2, Sect. 4.3.1) and the exact solvers: local search over
    deployment plans with two move kinds — {e swap} the instances of two
    nodes, and {e relocate} a node onto an unused instance (the move that
    exploits over-allocation) — under a geometric cooling schedule.
    Works for any deployment cost function, including the weighted and
    bandwidth objectives ({!Weighted}, {!Bandwidth}) that the exact
    encodings need special-casing for. *)

type options = {
  time_limit : float;        (** wall-clock budget, seconds *)
  initial_temperature : float;
      (** starting acceptance temperature, in cost units; a value around
          the cost spread of random plans works well *)
  cooling : float;           (** geometric factor per step, e.g. 0.9995 *)
  moves_per_temperature : int;
  restarts : int;            (** independent annealing runs; best kept *)
}

val default_options : options
(** 2 s, T₀ = 0.5, cooling 0.999, 50 moves per temperature, 3 restarts. *)

type result = {
  plan : Types.plan;
  cost : float;
  moves_tried : int;
  moves_accepted : int;
}

val solve :
  ?options:options ->
  Prng.t ->
  eval:(Types.plan -> float) ->
  Types.problem ->
  result
(** [solve rng ~eval problem] minimizes an arbitrary plan cost [eval]
    (e.g. [Cost.eval objective problem]). The returned plan is always a
    valid injection. *)

val solve_objective :
  ?options:options -> Prng.t -> Cost.objective -> Types.problem -> result
(** Convenience wrapper for the two standard objectives. *)
