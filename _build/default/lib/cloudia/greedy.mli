(** Lightweight greedy deployment heuristics (Sect. 4.3.2, Algorithms 1–2).

    Both grow a partial deployment one node at a time starting from the
    cheapest instance pair:

    - {b G1} always extends along the cheapest available instance link,
      ignoring the cost of the other links the extension implicitly adds.
    - {b G2} costs each candidate extension by the worst link it would
      add — explicit and implicit — and picks the candidate minimizing
      that worst cost, i.e. it locally minimizes the longest-link
      objective at every step.

    Both need the communication graph to be connected in the undirected
    sense to grow frontier-first; disconnected remainders are seeded again
    from the cheapest remaining pair. *)

val g1 : Types.problem -> Types.plan
(** Algorithm 1. *)

val g2 : Types.problem -> Types.plan
(** Algorithm 2. *)
