let cost_matrix env =
  let n = Cloudsim.Env.count env in
  Array.init n (fun i ->
      Array.init n (fun j -> if i = j then 0.0 else 1.0 /. Cloudsim.Env.bandwidth env i j))

let problem_of env graph = Types.problem ~graph ~costs:(cost_matrix env)

let bottleneck_gbps env graph plan =
  Array.fold_left
    (fun acc (i, i') -> Float.min acc (Cloudsim.Env.bandwidth env plan.(i) plan.(i')))
    infinity (Graphs.Digraph.edges graph)

let solve_cp ?options rng env graph =
  let problem = problem_of env graph in
  let r = Cp_solver.solve ?options rng problem in
  (r.Cp_solver.plan, bottleneck_gbps env graph r.Cp_solver.plan)
