(** Bandwidth as the deployment criterion.

    "We will investigate the deployment problem under other criteria, such
    as bandwidth, for additional classes of cloud applications" (Sect. 8).
    For throughput-bound applications the natural objective is to
    {e maximize the bottleneck} — the smallest achievable bandwidth among
    the links the application uses.

    Maximizing the minimum bandwidth is exactly minimizing the maximum of
    the reciprocal costs, so the entire longest-link machinery (greedy,
    random, annealing, CP, MIP) applies unchanged to a problem whose cost
    matrix is [1 / bandwidth]. *)

val cost_matrix : Cloudsim.Env.t -> float array array
(** [1 / bandwidth] per ordered pair, in s/Gbit; zero on the diagonal. *)

val problem_of : Cloudsim.Env.t -> Graphs.Digraph.t -> Types.problem
(** Deployment problem whose longest-link cost is the reciprocal of the
    bottleneck bandwidth. *)

val bottleneck_gbps : Cloudsim.Env.t -> Graphs.Digraph.t -> Types.plan -> float
(** The smallest bandwidth among the communication links under the plan
    (Gbit/s); [infinity] for an edgeless graph. *)

val solve_cp :
  ?options:Cp_solver.options -> Prng.t -> Cloudsim.Env.t -> Graphs.Digraph.t ->
  Types.plan * float
(** Maximize the bottleneck bandwidth with the CP solver; returns the plan
    and its bottleneck in Gbit/s. *)
