(** Exact deployment search by exhaustive enumeration.

    Enumerates all injections of nodes into instances — m!/(m−n)! plans —
    with branch-and-bound pruning on the partial longest link. Only viable
    for tiny instances; its purpose is to certify the optimality claims of
    the other solvers in tests and in the small-scale experiment of
    Sect. 6.5.3 (where MIP at 15 instances "was always able to find optimal
    solutions"). *)

val solve : ?max_instances:int -> Cost.objective -> Types.problem -> Types.plan * float
(** Optimal plan and cost. Raises [Invalid_argument] if the problem has
    more than [max_instances] (default 10) instances, as a guard against
    accidental factorial blow-ups. *)
