lib/cp/search.mli: Csp
