lib/cp/domain.mli:
