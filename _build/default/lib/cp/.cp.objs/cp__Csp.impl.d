lib/cp/csp.ml: Array Domain Graphs Hashtbl List Queue
