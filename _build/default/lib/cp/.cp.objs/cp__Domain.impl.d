lib/cp/domain.ml: Array List
