lib/cp/csp.mli: Domain
