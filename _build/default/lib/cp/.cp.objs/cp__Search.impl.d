lib/cp/search.ml: Array Csp Domain List Option Unix
