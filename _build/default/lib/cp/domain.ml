type t = {
  universe : int;
  words : int array; (* 63 usable bits per word *)
}

let bits_per_word = 63

let word_count universe = (universe + bits_per_word - 1) / bits_per_word

let full universe =
  if universe < 0 then invalid_arg "Domain.full: negative universe";
  let nw = word_count universe in
  let words = Array.make (max nw 1) 0 in
  for v = 0 to universe - 1 do
    let w = v / bits_per_word and b = v mod bits_per_word in
    words.(w) <- words.(w) lor (1 lsl b)
  done;
  { universe; words }

let empty universe =
  if universe < 0 then invalid_arg "Domain.empty: negative universe";
  { universe; words = Array.make (max (word_count universe) 1) 0 }

let universe t = t.universe

let copy t = { universe = t.universe; words = Array.copy t.words }

let blit ~src ~dst =
  if src.universe <> dst.universe then invalid_arg "Domain.blit: universe mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let check t v =
  if v < 0 || v >= t.universe then invalid_arg "Domain: value out of universe"

let mem t v =
  check t v;
  t.words.(v / bits_per_word) land (1 lsl (v mod bits_per_word)) <> 0

let remove t v =
  check t v;
  let w = v / bits_per_word and b = 1 lsl (v mod bits_per_word) in
  if t.words.(w) land b <> 0 then begin
    t.words.(w) <- t.words.(w) lxor b;
    true
  end
  else false

let add t v =
  check t v;
  let w = v / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (v mod bits_per_word))

let fix t v =
  check t v;
  Array.fill t.words 0 (Array.length t.words) 0;
  add t v

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let size t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let is_singleton t =
  (* Exactly one bit set across all words. *)
  let seen = ref 0 in
  (try
     Array.iter
       (fun w ->
         if w <> 0 then begin
           if w land (w - 1) <> 0 then begin
             seen := 2;
             raise Exit
           end;
           incr seen;
           if !seen > 1 then raise Exit
         end)
       t.words
   with Exit -> ());
  !seen = 1

let min_value t =
  let result = ref (-1) in
  (try
     Array.iteri
       (fun wi w ->
         if w <> 0 then begin
           let b = ref 0 in
           while w land (1 lsl !b) = 0 do
             incr b
           done;
           result := (wi * bits_per_word) + !b;
           raise Exit
         end)
       t.words
   with Exit -> ());
  if !result = -1 then raise Not_found else !result

let iter f t =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to bits_per_word - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * bits_per_word) + b)
        done)
    t.words

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

let keep_only t pred =
  let changed = ref false in
  iter (fun v -> if (not (pred v)) && remove t v then changed := true) t;
  !changed

let intersects_complement d bad =
  if d.universe <> bad.universe then invalid_arg "Domain.intersects_complement: universe mismatch";
  let result = ref false in
  (try
     for i = 0 to Array.length d.words - 1 do
       if d.words.(i) land lnot bad.words.(i) <> 0 then begin
         result := true;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let subtract d bad =
  if d.universe <> bad.universe then invalid_arg "Domain.subtract: universe mismatch";
  let changed = ref false in
  for i = 0 to Array.length d.words - 1 do
    let nw = d.words.(i) land lnot bad.words.(i) in
    if nw <> d.words.(i) then begin
      d.words.(i) <- nw;
      changed := true
    end
  done;
  !changed
