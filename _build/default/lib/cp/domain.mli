(** Finite integer domains as bitsets.

    A domain is a mutable subset of [0 .. universe-1], stored as packed bit
    words. The CP search copies domains when branching, so copying must be
    cheap — at the scales used here (universe ≤ a few hundred) a domain is
    a handful of machine words. *)

type t

val full : int -> t
(** [full universe] is the domain \{0, …, universe-1\}. *)

val empty : int -> t
(** The empty domain over the given universe. *)

val universe : t -> int

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with [src]'s contents. Universes must match. *)

val mem : t -> int -> bool

val remove : t -> int -> bool
(** Remove a value; returns [true] if the value was present. *)

val add : t -> int -> unit

val fix : t -> int -> unit
(** Collapse the domain to a single value. *)

val size : t -> int
(** Cardinality (population count). *)

val is_empty : t -> bool

val is_singleton : t -> bool

val min_value : t -> int
(** Smallest member. Raises [Not_found] on an empty domain. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in ascending order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val to_list : t -> int list
(** Members in ascending order. *)

val keep_only : t -> (int -> bool) -> bool
(** [keep_only d pred] removes every member failing [pred]; returns [true]
    if anything was removed. *)

val intersects_complement : t -> t -> bool
(** [intersects_complement d bad] is true iff [d] has a member outside
    [bad] — i.e. [d \ bad ≠ ∅]. This is the support test of the
    forbidden-pair propagator. *)

val subtract : t -> t -> bool
(** [subtract d bad] removes from [d] every member of [bad]; returns [true]
    if [d] changed. *)
