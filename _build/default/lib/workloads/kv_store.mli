(** Key-value store workload (Sect. 6.1.3).

    Front-end servers query a set of storage nodes holding randomly
    partitioned keys; each query touches a random subset of storage nodes
    in parallel and completes when the slowest touched link answers. As
    the paper notes, neither longest link nor longest path matches this
    average-response objective exactly — ClouDiA still improves it by
    15–31 % using longest link, which this simulator lets the benchmarks
    verify. *)

val graph : front_ends:int -> storage:int -> Graphs.Digraph.t
(** Complete bipartite communication graph, front-ends (nodes
    [0..front_ends-1]) → storage nodes. *)

val response_time :
  Prng.t ->
  Cloudsim.Env.t ->
  plan:int array ->
  front_ends:int ->
  storage:int ->
  touch:int ->
  float
(** One query: a uniformly random front-end touches [touch] distinct
    random storage nodes in parallel; the response time is the slowest
    jittered RTT among them, in milliseconds. Requires
    [1 <= touch <= storage]. *)

val mean_response_time :
  Prng.t ->
  Cloudsim.Env.t ->
  plan:int array ->
  front_ends:int ->
  storage:int ->
  touch:int ->
  queries:int ->
  float
(** Average over [queries] independent queries. *)
