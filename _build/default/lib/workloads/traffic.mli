(** Dynamic traffic assignment workload (Sect. 2.1.1).

    "Traffic patterns are extrapolated for a given time period, say 15
    min, based on traffic data collected for the previous period.
    Simulation must be faster than real time so that simulation results
    can generate decisions that will improve traffic conditions for the
    next time period." The computation is distributed by a graph
    partitioning of the road network; partitions exchange boundary flows
    every simulation round and synchronize — so, like the behavioral
    workload, each round costs the worst link, but the figure of merit is
    a {e deadline}: the fraction of periods whose simulation finishes
    before the period ends. *)

val graph : Prng.t -> partitions:int -> Graphs.Digraph.t
(** A random connected partition-adjacency graph (road-network partitions
    touch a few neighbors each). *)

type outcome = {
  periods_total : int;
  periods_on_time : int;
  mean_period_seconds : float;
  worst_period_seconds : float;
}

val run :
  Prng.t ->
  Cloudsim.Env.t ->
  plan:int array ->
  graph:Graphs.Digraph.t ->
  periods:int ->
  rounds_per_period:int ->
  deadline_seconds:float ->
  outcome
(** Simulate [periods] periods, each of [rounds_per_period] barrier-
    synchronized exchange rounds; a period is on time when its simulated
    communication completes within [deadline_seconds]. *)

val on_time_fraction : outcome -> float
