lib/workloads/roadnet.ml: Array Graphs List Prng Queue
