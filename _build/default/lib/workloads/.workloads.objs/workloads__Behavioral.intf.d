lib/workloads/behavioral.mli: Cloudsim Graphs Prng
