lib/workloads/behavioral.ml: Array Cloudsim Float Graphs
