lib/workloads/kv_store.mli: Cloudsim Graphs Prng
