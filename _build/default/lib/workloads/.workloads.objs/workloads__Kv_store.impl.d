lib/workloads/kv_store.ml: Array Cloudsim Float Graphs Prng
