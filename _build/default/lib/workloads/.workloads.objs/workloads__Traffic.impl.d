lib/workloads/traffic.ml: Array Cloudsim Graphs
