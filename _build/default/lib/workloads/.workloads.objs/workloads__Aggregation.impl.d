lib/workloads/aggregation.ml: Array Cloudsim Graphs
