lib/workloads/aggregation.mli: Cloudsim Graphs Prng
