lib/workloads/traffic.mli: Cloudsim Graphs Prng
