lib/workloads/roadnet.mli: Graphs Prng
