type network = {
  n : int;
  adj : int list array; (* undirected adjacency *)
}

let neighbors_in_grid ~rows ~cols v =
  let r = v / cols and c = v mod cols in
  List.filter_map
    (fun (dr, dc) ->
      let r' = r + dr and c' = c + dc in
      if r' >= 0 && r' < rows && c' >= 0 && c' < cols then Some ((r' * cols) + c') else None)
    [ (0, 1); (1, 0); (0, -1); (-1, 0) ]

let connected_without n adj (a, b) =
  (* BFS over the network with edge (a, b) removed. *)
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(0) <- true;
  Queue.add 0 queue;
  let visited = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        let skip = (v = a && w = b) || (v = b && w = a) in
        if (not skip) && not seen.(w) then begin
          seen.(w) <- true;
          incr visited;
          Queue.add w queue
        end)
      adj.(v)
  done;
  !visited = n

let grid rng ~rows ~cols ~keep =
  if rows <= 0 || cols <= 0 then invalid_arg "Roadnet.grid: dimensions must be positive";
  if keep <= 0.0 || keep > 1.0 then invalid_arg "Roadnet.grid: keep out of (0,1]";
  let n = rows * cols in
  let adj = Array.make n [] in
  let add_edge a b =
    adj.(a) <- b :: adj.(a);
    adj.(b) <- a :: adj.(b)
  in
  (* Start from the full grid... *)
  for v = 0 to n - 1 do
    List.iter (fun w -> if v < w then add_edge v w) (neighbors_in_grid ~rows ~cols v)
  done;
  (* ...then try to remove each segment independently, skipping removals
     that would disconnect the network. *)
  let remove_edge a b =
    adj.(a) <- List.filter (fun w -> w <> b) adj.(a);
    adj.(b) <- List.filter (fun w -> w <> a) adj.(b)
  in
  for v = 0 to n - 1 do
    List.iter
      (fun w ->
        if v < w && Prng.uniform rng > keep && connected_without n adj (v, w) then
          remove_edge v w)
      adj.(v)
  done;
  { n; adj }

let intersection_count t = t.n

let segment_count t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.adj / 2

type partition = {
  assignment : int array;
  sizes : int array;
  cut_edges : int;
}

let partition rng t ~parts =
  if parts < 1 || parts > t.n then invalid_arg "Roadnet.partition: parts out of range";
  let assignment = Array.make t.n (-1) in
  let seeds = Prng.sample_without_replacement rng parts t.n in
  let frontiers = Array.map (fun s -> Queue.create () |> fun q -> Queue.add s q; q) seeds in
  Array.iteri (fun p s -> assignment.(s) <- p) seeds;
  let remaining = ref (t.n - parts) in
  (* Round-robin region growing: each partition claims one frontier
     intersection per round, keeping regions connected and balanced. *)
  while !remaining > 0 do
    let progressed = ref false in
    Array.iteri
      (fun p q ->
        let claimed = ref false in
        while (not !claimed) && not (Queue.is_empty q) do
          let v = Queue.pop q in
          List.iter
            (fun w ->
              if (not !claimed) && assignment.(w) = -1 then begin
                assignment.(w) <- p;
                decr remaining;
                claimed := true;
                progressed := true;
                Queue.add w q
              end)
            t.adj.(v);
          (* Keep v on the frontier while it may still have unclaimed
             neighbors later rounds can reach. *)
          if List.exists (fun w -> assignment.(w) = -1) t.adj.(v) then Queue.add v q
        done)
      frontiers;
    if not !progressed then begin
      (* Isolated unassigned pockets cannot happen in a connected network,
         but guard against an infinite loop. *)
      Array.iteri (fun v p -> if p = -1 then begin
        assignment.(v) <- 0;
        decr remaining
      end) assignment
    end
  done;
  let sizes = Array.make parts 0 in
  Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) assignment;
  let cut = ref 0 in
  for v = 0 to t.n - 1 do
    List.iter (fun w -> if v < w && assignment.(v) <> assignment.(w) then incr cut) t.adj.(v)
  done;
  { assignment; sizes; cut_edges = !cut }

let communication_graph t p =
  let parts = Array.length p.sizes in
  let edges = ref [] in
  for v = 0 to t.n - 1 do
    List.iter
      (fun w ->
        let a = p.assignment.(v) and b = p.assignment.(w) in
        if a <> b then edges := (a, b) :: !edges)
      t.adj.(v)
  done;
  Graphs.Digraph.create ~n:parts !edges

let balance p =
  let mn = Array.fold_left min p.sizes.(0) p.sizes in
  let mx = Array.fold_left max p.sizes.(0) p.sizes in
  if mn = 0 then infinity else float_of_int mx /. float_of_int mn
