(** Road-network generation and partitioning for the traffic workload.

    The paper's dynamic-traffic-assignment example distributes simulation
    over nodes by "a graph partitioning of the traffic network"
    (Sect. 2.1.1, citing Wen's MIT thesis). This module provides the
    substrate: an urban-grid road network with randomly removed segments,
    a multi-seed BFS region-growing partitioner, and the induced
    partition-adjacency communication graph (two partitions talk iff some
    road crosses between them). *)

type network
(** An undirected road network: intersections and road segments. *)

val grid : Prng.t -> rows:int -> cols:int -> keep:float -> network
(** An [rows]×[cols] street grid in which each segment survives with
    probability [keep] (default city blocks have some closed streets),
    constrained to remain connected: removal that would disconnect the
    network is skipped. Requires [0 < keep <= 1]. *)

val intersection_count : network -> int
val segment_count : network -> int

type partition = {
  assignment : int array;   (** intersection → partition id, 0..k-1 *)
  sizes : int array;        (** intersections per partition *)
  cut_edges : int;          (** road segments crossing partitions *)
}

val partition : Prng.t -> network -> parts:int -> partition
(** Multi-seed BFS region growing: [parts] random seeds expand in rounds,
    each claiming a frontier intersection per round, until the network is
    covered. Produces connected, roughly balanced regions — the standard
    cheap geographic partitioning for traffic simulation. Requires
    [1 <= parts <= intersection_count]. *)

val communication_graph : network -> partition -> Graphs.Digraph.t
(** Partition-adjacency graph with both edge directions: partitions
    exchange boundary traffic each simulation round iff a road segment
    crosses between them. This is the [graph] to deploy with ClouDiA and
    feed to {!Traffic.run}. *)

val balance : partition -> float
(** Largest partition size over smallest (1.0 = perfectly balanced). *)
