let graph ~front_ends ~storage = Graphs.Templates.bipartite ~front_ends ~storage

let response_time rng env ~plan ~front_ends ~storage ~touch =
  if touch < 1 || touch > storage then invalid_arg "Kv_store: touch out of [1, storage]";
  if Array.length plan <> front_ends + storage then
    invalid_arg "Kv_store: plan length differs from node count";
  let fe = Prng.int rng front_ends in
  let touched = Prng.sample_without_replacement rng touch storage in
  Array.fold_left
    (fun worst s ->
      let rtt = Cloudsim.Env.sample_rtt rng env plan.(fe) plan.(front_ends + s) in
      Float.max worst rtt)
    0.0 touched

let mean_response_time rng env ~plan ~front_ends ~storage ~touch ~queries =
  if queries <= 0 then invalid_arg "Kv_store.mean_response_time: need positive queries";
  let acc = ref 0.0 in
  for _ = 1 to queries do
    acc := !acc +. response_time rng env ~plan ~front_ends ~storage ~touch
  done;
  !acc /. float_of_int queries
