let graph rng ~partitions =
  if partitions <= 0 then invalid_arg "Traffic.graph: need at least one partition";
  Graphs.Templates.random_connected rng ~n:partitions ~extra_edges:(partitions / 2)

type outcome = {
  periods_total : int;
  periods_on_time : int;
  mean_period_seconds : float;
  worst_period_seconds : float;
}

let run rng env ~plan ~graph ~periods ~rounds_per_period ~deadline_seconds =
  if periods <= 0 || rounds_per_period <= 0 then
    invalid_arg "Traffic.run: periods and rounds must be positive";
  if deadline_seconds <= 0.0 then invalid_arg "Traffic.run: deadline must be positive";
  if Array.length plan <> Graphs.Digraph.n graph then
    invalid_arg "Traffic.run: plan length differs from partition count";
  let edges = Graphs.Digraph.edges graph in
  let on_time = ref 0 in
  let total = ref 0.0 and worst = ref 0.0 in
  for _ = 1 to periods do
    let period_ms = ref 0.0 in
    for _ = 1 to rounds_per_period do
      let round_worst = ref 0.0 in
      Array.iter
        (fun (i, i') ->
          let rtt = Cloudsim.Env.sample_rtt rng env plan.(i) plan.(i') in
          if rtt > !round_worst then round_worst := rtt)
        edges;
      period_ms := !period_ms +. !round_worst
    done;
    let seconds = !period_ms /. 1000.0 in
    if seconds <= deadline_seconds then incr on_time;
    total := !total +. seconds;
    if seconds > !worst then worst := seconds
  done;
  {
    periods_total = periods;
    periods_on_time = !on_time;
    mean_period_seconds = !total /. float_of_int periods;
    worst_period_seconds = !worst;
  }

let on_time_fraction o = float_of_int o.periods_on_time /. float_of_int o.periods_total
