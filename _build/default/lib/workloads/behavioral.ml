let graph ~rows ~cols = Graphs.Templates.mesh2d ~rows ~cols

let check_plan env plan n =
  if Array.length plan <> n then invalid_arg "Behavioral: plan length differs from node count";
  Array.iter
    (fun s ->
      if s < 0 || s >= Cloudsim.Env.count env then
        invalid_arg "Behavioral: plan maps outside the allocation")
    plan

let time_to_solution rng env ~plan ~rows ~cols ~ticks =
  if ticks <= 0 then invalid_arg "Behavioral.time_to_solution: need positive ticks";
  let g = graph ~rows ~cols in
  check_plan env plan (Graphs.Digraph.n g);
  let edges = Graphs.Digraph.edges g in
  let total_ms = ref 0.0 in
  for _ = 1 to ticks do
    (* The tick's barrier completes when the slowest neighbor exchange
       does. *)
    let worst = ref 0.0 in
    Array.iter
      (fun (i, i') ->
        let rtt = Cloudsim.Env.sample_rtt rng env plan.(i) plan.(i') in
        if rtt > !worst then worst := rtt)
      edges;
    total_ms := !total_ms +. !worst
  done;
  !total_ms /. 1000.0

let expected_tick_cost env ~plan ~rows ~cols =
  let g = graph ~rows ~cols in
  check_plan env plan (Graphs.Digraph.n g);
  Array.fold_left
    (fun acc (i, i') -> Float.max acc (Cloudsim.Env.mean_latency env plan.(i) plan.(i')))
    0.0 (Graphs.Digraph.edges g)
