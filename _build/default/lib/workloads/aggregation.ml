let graph ~fanout ~depth = Graphs.Templates.aggregation_tree ~fanout ~depth

let response_time rng env ~plan ~fanout ~depth =
  let g = graph ~fanout ~depth in
  let n = Graphs.Digraph.n g in
  if Array.length plan <> n then invalid_arg "Aggregation: plan length differs from node count";
  (* Arrival time of the complete partial aggregate at each node: leaves
     are ready at 0; an inner node forwards once its slowest child's
     message has arrived. Edges point child -> parent, so we process nodes
     in reverse breadth-first order (children have larger indices). *)
  let arrival = Array.make n 0.0 in
  for child = n - 1 downto 1 do
    let parent = (Graphs.Digraph.out_neighbors g child).(0) in
    let rtt = Cloudsim.Env.sample_rtt rng env plan.(child) plan.(parent) in
    let t = arrival.(child) +. rtt in
    if t > arrival.(parent) then arrival.(parent) <- t
  done;
  arrival.(0)

let mean_response_time rng env ~plan ~fanout ~depth ~queries =
  if queries <= 0 then invalid_arg "Aggregation.mean_response_time: need positive queries";
  let acc = ref 0.0 in
  for _ = 1 to queries do
    acc := !acc +. response_time rng env ~plan ~fanout ~depth
  done;
  !acc /. float_of_int queries
