(** Behavioral-simulation workload (Sect. 6.1.1).

    Modeled on the fish-school simulation of Couzin et al.: space is
    partitioned into a 2-D mesh of regions, one application node per
    region; every simulation tick, neighboring nodes exchange 1 KB state
    messages and synchronize at a barrier before the next tick. With
    CPU-heavy computation hidden (as the paper does), a tick costs the
    worst RTT among mesh links, so total time-to-solution is governed by
    the longest link — the Class 1 deployment cost. *)

val graph : rows:int -> cols:int -> Graphs.Digraph.t
(** The communication graph: a 2-D mesh with both directions per
    adjacency. *)

val time_to_solution :
  Prng.t ->
  Cloudsim.Env.t ->
  plan:int array ->
  rows:int ->
  cols:int ->
  ticks:int ->
  float
(** Simulated seconds to complete [ticks] barrier-synchronized steps under
    the node-to-instance mapping [plan] (node [r·cols + c] runs on instance
    [plan.(r·cols + c)]). Each tick draws fresh jittered RTTs, so two runs
    with the same plan differ slightly — like a real execution. *)

val expected_tick_cost : Cloudsim.Env.t -> plan:int array -> rows:int -> cols:int -> float
(** Analytic lower bound on a tick's cost: the longest mean link latency of
    the deployment, in milliseconds. Useful to sanity-check simulation
    output. *)
