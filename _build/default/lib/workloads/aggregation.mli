(** Synthetic aggregation-query workload (Sect. 6.1.2).

    A top-k query fans out to leaf nodes of a multi-level aggregation
    tree; each node aggregates its children's partial results and forwards
    them toward the root. The query's response time is the slowest
    root-to-leaf accumulation path — the Class 2 (longest path)
    deployment cost. *)

val graph : fanout:int -> depth:int -> Graphs.Digraph.t
(** Aggregation tree with edges directed leaf → root (node 0). *)

val response_time :
  Prng.t -> Cloudsim.Env.t -> plan:int array -> fanout:int -> depth:int -> float
(** One query's simulated response time in milliseconds: the maximum over
    leaves of the summed jittered RTTs along the leaf's path to the root
    (partial aggregates at inner nodes leave as soon as their slowest
    child arrives). *)

val mean_response_time :
  Prng.t ->
  Cloudsim.Env.t ->
  plan:int array ->
  fanout:int ->
  depth:int ->
  queries:int ->
  float
(** Average of {!response_time} over [queries] independent queries. *)
