(** Empirical cumulative distribution functions.

    The paper reports heterogeneity results as CDFs over links (Figs. 1, 4,
    18, 20); this module turns a sample array into an evaluable step
    function and into printable (x, F(x)) series. *)

type t
(** An empirical CDF built from a finite sample. *)

val of_samples : float array -> t
(** Build from a non-empty sample array (copied and sorted internally). *)

val eval : t -> float -> float
(** [eval t x] = fraction of samples [<= x], in \[0, 1\]. *)

val inverse : t -> float -> float
(** [inverse t q] for [q] in \[0, 1\]: smallest sample value [v] such that
    [eval t v >= q]. *)

val n : t -> int
(** Number of underlying samples. *)

val support : t -> float * float
(** [(min, max)] of the sample. *)

val series : ?points:int -> t -> (float * float) list
(** [series ~points t] samples the CDF at [points] (default 20) evenly spaced
    x-positions spanning the support, suitable for printing a figure series. *)
