(** Scalar summaries of float samples.

    Percentiles use linear interpolation between order statistics (the
    "type 7" estimator of Hyndman & Fan, the R default), which is what
    network-measurement tooling conventionally reports. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Population variance (divide by n). Raises on an empty array. *)

val stddev : float array -> float
(** Population standard deviation. Raises on an empty array. *)

val min : float array -> float
(** Smallest element. Raises on an empty array. *)

val max : float array -> float
(** Largest element. Raises on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in \[0, 100\]: linear-interpolated percentile.
    Does not mutate its input. Raises on an empty array or [p] out of range. *)

val median : float array -> float
(** [percentile xs 50.]. *)

type t = {
  n : int;
  mean : float;
  sd : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** One-shot summary record. *)

val of_array : float array -> t
(** Compute all summary fields in one pass over a sorted copy. Raises on an
    empty array. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering. *)
