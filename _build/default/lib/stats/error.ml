let normalize v =
  if Array.length v = 0 then invalid_arg "Error.normalize: empty vector";
  let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v) in
  if norm = 0.0 then invalid_arg "Error.normalize: zero vector";
  Array.map (fun x -> x /. norm) v

let check_same_length name a b =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": length mismatch");
  if Array.length a = 0 then invalid_arg (name ^ ": empty vectors")

let rmse a b =
  check_same_length "Error.rmse" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int (Array.length a))

let normalized_relative_errors ~baseline v =
  check_same_length "Error.normalized_relative_errors" baseline v;
  let b = normalize baseline and w = normalize v in
  Array.init (Array.length b) (fun i ->
      if b.(i) = 0.0 then if w.(i) = 0.0 then 0.0 else infinity
      else Float.abs (w.(i) -. b.(i)) /. b.(i))

let normalized_rmse ~baseline v =
  check_same_length "Error.normalized_rmse" baseline v;
  rmse (normalize baseline) (normalize v)
