lib/stats/kmeans1d.mli:
