lib/stats/kmeans1d.ml: Array Float List
