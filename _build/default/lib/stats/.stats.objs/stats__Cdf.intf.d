lib/stats/cdf.mli:
