lib/stats/error.mli:
