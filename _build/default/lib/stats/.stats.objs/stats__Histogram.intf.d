lib/stats/histogram.mli:
