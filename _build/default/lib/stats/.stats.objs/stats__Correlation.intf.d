lib/stats/correlation.mli:
