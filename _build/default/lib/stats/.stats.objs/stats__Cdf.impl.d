lib/stats/cdf.ml: Array Float List Stdlib
