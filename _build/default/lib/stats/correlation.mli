(** Correlation coefficients.

    Used to study how strongly alternative latency metrics (mean+SD, p99)
    track mean latency (Sect. 3.2, Fig. 10), and how badly IP distance and
    hop count track latency (Appendix 2). *)

val pearson : float array -> float array -> float
(** Pearson product-moment correlation. Returns [nan] if either vector has
    zero variance. Raises [Invalid_argument] on mismatched or empty input. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson on fractional ranks, with ties
    averaged). Same error conditions as {!pearson}. *)

val kendall : float array -> float array -> float
(** Kendall's tau-a (concordant minus discordant pairs over all pairs);
    O(n²), suitable for the modest vector sizes used here. *)
