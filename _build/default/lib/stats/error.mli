(** Error measures between latency vectors.

    The paper compares measurement schemes by treating the n² pairwise mean
    latencies as a vector, normalizing to unit length (so a uniform over- or
    under-estimate counts as zero error), and reporting per-dimension
    relative error (Fig. 4) or root-mean-square error versus a ground truth
    (Fig. 5). *)

val normalize : float array -> float array
(** Scale a vector to unit Euclidean norm. Raises [Invalid_argument] on an
    empty or all-zero vector. *)

val rmse : float array -> float array -> float
(** Root-mean-square error between two equal-length vectors.
    Raises on mismatched lengths or empty input. *)

val normalized_relative_errors : baseline:float array -> float array -> float array
(** [normalized_relative_errors ~baseline v]: both vectors are normalized to
    unit length, then the per-dimension relative error
    [|v_i - b_i| / b_i] is returned (dimensions where the baseline is zero
    yield [0.] if both are zero, [infinity] otherwise). This is the Fig. 4
    statistic. *)

val normalized_rmse : baseline:float array -> float array -> float
(** RMSE after normalizing both vectors to unit length (Fig. 5 statistic). *)
