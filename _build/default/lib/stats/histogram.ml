type t = {
  lo : float;
  hi : float;
  bins : int;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; bins; counts = Array.make bins 0; total = 0 }

let add t x =
  let width = (t.hi -. t.lo) /. float_of_int t.bins in
  let idx = int_of_float (Float.floor ((x -. t.lo) /. width)) in
  let idx = max 0 (min (t.bins - 1) idx) in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1

let counts t = Array.copy t.counts

let total t = t.total

let bin_center t i =
  let width = (t.hi -. t.lo) /. float_of_int t.bins in
  t.lo +. ((float_of_int i +. 0.5) *. width)

let fractions t =
  if t.total = 0 then Array.make t.bins 0.0
  else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts
