(** Fixed-width histograms for rendering distribution shapes in text. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Histogram over \[lo, hi) with [bins] equal-width bins; values outside the
    range are clamped to the edge bins. Raises [Invalid_argument] if
    [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
(** Record one observation. *)

val counts : t -> int array
(** Per-bin counts, length [bins]. *)

val total : t -> int
(** Total observations recorded. *)

val bin_center : t -> int -> float
(** Mid-point value of bin [i]. *)

val fractions : t -> float array
(** Per-bin fraction of the total (all zeros if no observations). *)
