lib/lp/model.ml: Array Hashtbl List Simplex
