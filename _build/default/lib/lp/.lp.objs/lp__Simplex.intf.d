lib/lp/simplex.mli:
