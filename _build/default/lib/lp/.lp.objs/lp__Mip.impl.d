lib/lp/mip.ml: Array Float Model Simplex Unix
