(** Two-phase primal simplex on the dense tableau.

    Solves  minimize cᵀx  subject to  Ax {≤,=,≥} b,  x ≥ 0.

    This is the LP kernel underneath the branch-and-bound MIP solver
    ({!Mip}). The implementation is the textbook two-phase tableau method:
    phase 1 minimizes the sum of artificial variables to find a basic
    feasible solution; phase 2 minimizes the true objective. Pricing is
    Dantzig (most negative reduced cost) with an automatic switch to Bland's
    rule after an iteration threshold, which guarantees termination in the
    presence of degeneracy. Dense storage is adequate for the problem sizes
    in this repository (thousands of rows). *)

type relation = Le | Ge | Eq

type status =
  | Optimal of float * float array  (** objective value and primal solution *)
  | Infeasible
  | Unbounded

val solve :
  ?max_iters:int ->
  objective:float array ->
  rows:(float array * relation * float) list ->
  unit ->
  status
(** [solve ~objective ~rows ()] minimizes [objective]·x over x ≥ 0 subject
    to [rows], each [(coeffs, rel, rhs)] with [coeffs] of the same length as
    [objective]. [max_iters] (default [50_000]) bounds total pivots across
    both phases; exceeding it raises [Failure]. Raises [Invalid_argument] on
    dimension mismatches. *)
