(** Maximum bipartite matching (Hopcroft–Karp).

    Used by the CP solver's alldifferent propagator (Régin's algorithm first
    computes a maximum matching between variables and values) and by tests
    that check feasibility of partial deployments. *)

type t = {
  size : int;                (** cardinality of the maximum matching *)
  pair_left : int array;     (** for each left node, matched right node or -1 *)
  pair_right : int array;    (** for each right node, matched left node or -1 *)
}

val maximum : n_left:int -> n_right:int -> adj:int array array -> t
(** [maximum ~n_left ~n_right ~adj] computes a maximum matching in the
    bipartite graph where left node [u] is adjacent to the right nodes
    [adj.(u)]. O(E √V). [adj] entries must lie in \[0, n_right). *)

val is_perfect_left : t -> bool
(** True iff every left node is matched. *)
