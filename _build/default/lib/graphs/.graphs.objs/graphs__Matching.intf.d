lib/graphs/matching.mli:
