lib/graphs/graph_io.mli: Digraph
