lib/graphs/matching.ml: Array Queue
