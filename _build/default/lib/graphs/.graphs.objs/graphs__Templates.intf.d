lib/graphs/templates.mli: Digraph Prng
