lib/graphs/scc.ml: Array
