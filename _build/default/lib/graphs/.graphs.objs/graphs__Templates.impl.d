lib/graphs/templates.ml: Array Digraph List Prng
