lib/graphs/labeling.mli: Digraph
