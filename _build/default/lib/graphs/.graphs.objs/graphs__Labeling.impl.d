lib/graphs/labeling.ml: Array Digraph
