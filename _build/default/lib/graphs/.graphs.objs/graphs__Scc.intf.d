lib/graphs/scc.mli:
