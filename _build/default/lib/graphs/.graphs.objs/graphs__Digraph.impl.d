lib/graphs/digraph.ml: Array Format List Queue
