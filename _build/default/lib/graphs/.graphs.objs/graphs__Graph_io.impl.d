lib/graphs/graph_io.ml: Array Buffer Digraph List Option Printf String Templates
