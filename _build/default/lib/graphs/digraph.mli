(** Directed graphs over integer nodes [0 .. n-1].

    Communication graphs (Definition 3 of the paper) are directed graphs
    whose nodes are application components and whose edges are the [talks]
    relation. This module provides the immutable graph representation used
    throughout the repository, plus the DAG utilities required by the
    longest-path deployment cost. *)

type t
(** An immutable directed graph. Parallel edges are collapsed; self-loops
    are rejected at construction. *)

val create : n:int -> (int * int) list -> t
(** [create ~n edges] builds a graph on nodes [0..n-1]. Raises
    [Invalid_argument] if an endpoint is out of range or an edge is a
    self-loop. Duplicate edges are collapsed. *)

val n : t -> int
(** Number of nodes. *)

val edge_count : t -> int
(** Number of distinct directed edges. *)

val edges : t -> (int * int) array
(** All edges, lexicographically sorted. The returned array is fresh. *)

val mem_edge : t -> int -> int -> bool
(** Edge membership test, O(log out-degree). *)

val out_neighbors : t -> int -> int array
(** Successors of a node (sorted, shared — do not mutate). *)

val in_neighbors : t -> int -> int array
(** Predecessors of a node (sorted, shared — do not mutate). *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val undirected_neighbors : t -> int -> int array
(** Union of in- and out-neighbors, sorted, without duplicates. *)

val undirected_degree : t -> int -> int

val is_dag : t -> bool
(** True iff the graph has no directed cycle. *)

val topological_order : t -> int array option
(** A topological order of the nodes, or [None] if the graph has a cycle. *)

val longest_path : t -> weight:(int -> int -> float) -> float
(** [longest_path g ~weight] is the maximum, over directed paths in the DAG
    [g], of the sum of [weight u v] over the path's edges. Isolated nodes
    contribute 0. Raises [Invalid_argument] if [g] is not a DAG. Weights may
    be negative, but the empty path (cost 0) is always a candidate, matching
    the paper's definition where a path of links aggregates by summation. *)

val longest_path_witness : t -> weight:(int -> int -> float) -> float * int list
(** Longest path value together with one witness path (node sequence). *)

val map_nodes : t -> (int -> int) -> n:int -> t
(** [map_nodes g f ~n] relabels each node [v] as [f v] in a graph on
    [n] nodes. [f] must be injective on [g]'s nodes. *)

val transpose : t -> t
(** Reverse every edge. *)

val is_connected_undirected : t -> bool
(** True iff the undirected version of the graph is connected (graphs with
    zero or one node count as connected). *)

val pp : Format.formatter -> t -> unit
(** Debugging rendering: node count and the edge list. *)
