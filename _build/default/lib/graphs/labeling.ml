type label = {
  in_deg : int;
  out_deg : int;
  (* Sorted descending degrees of undirected neighbors: a target dominates a
     pattern if, position by position, each target neighbor degree is at
     least the corresponding pattern neighbor degree (after truncating the
     target list to the pattern's length — the target may have extra
     neighbors). *)
  neighbor_degrees : int array;
}

let compute g =
  let n = Digraph.n g in
  Array.init n (fun v ->
      let nbrs = Digraph.undirected_neighbors g v in
      let degs = Array.map (fun w -> Digraph.undirected_degree g w) nbrs in
      Array.sort (fun a b -> compare b a) degs;
      { in_deg = Digraph.in_degree g v; out_deg = Digraph.out_degree g v; neighbor_degrees = degs })

let compatible ~pattern ~target =
  pattern.in_deg <= target.in_deg
  && pattern.out_deg <= target.out_deg
  && Array.length pattern.neighbor_degrees <= Array.length target.neighbor_degrees
  &&
  (* Greedy domination check on sorted-descending lists: the i-th largest
     target neighbor degree must cover the i-th largest pattern one. *)
  let ok = ref true in
  Array.iteri
    (fun i d -> if target.neighbor_degrees.(i) < d then ok := false)
    pattern.neighbor_degrees;
  !ok

let compatibility_matrix ~pattern ~target =
  let pl = compute pattern and tl = compute target in
  Array.map (fun p -> Array.map (fun t -> compatible ~pattern:p ~target:t) tl) pl
