(** Communication-graph templates.

    Sect. 3.3: "ClouDiA therefore provides communication graph templates for
    certain common graph structures such as meshes or bipartite graphs to
    minimize human involvement." These constructors generate the graphs used
    by the paper's three workloads and by the benchmarks.

    All templates produce directed graphs. Where the application communicates
    bidirectionally (meshes), both edge directions are included; tree and
    bipartite templates are directed along the data flow. *)

val mesh2d : rows:int -> cols:int -> Digraph.t
(** 4-neighbor 2-D mesh (the behavioral-simulation communication graph).
    Both directions of every adjacency are present. Node [(r, c)] is
    [r * cols + c]. *)

val mesh3d : nx:int -> ny:int -> nz:int -> Digraph.t
(** 6-neighbor 3-D mesh, both directions per adjacency. *)

val torus2d : rows:int -> cols:int -> Digraph.t
(** 2-D mesh with wraparound links. Requires [rows >= 3] and [cols >= 3] to
    avoid duplicate edges between the same pair. *)

val aggregation_tree : fanout:int -> depth:int -> Digraph.t
(** Complete [fanout]-ary tree of the given [depth] with edges directed from
    leaves toward the root (node 0), matching the paper's multi-level
    aggregation-query workload. [depth = 0] is a single node. *)

val bipartite : front_ends:int -> storage:int -> Digraph.t
(** Complete bipartite graph directed from each of [front_ends] front-end
    nodes to each of [storage] storage nodes (the key-value store workload).
    Front-ends are nodes [0 .. front_ends-1]. *)

val ring : n:int -> Digraph.t
(** Directed cycle 0 → 1 → … → n-1 → 0. Requires [n >= 3] (as a
    communication graph; a 2-ring would duplicate edges). Note: not a DAG. *)

val star : n:int -> Digraph.t
(** Edges from the hub (node 0) to each of the other [n - 1] nodes. *)

val hypercube : dims:int -> Digraph.t
(** [2^dims]-node hypercube, both directions per edge. *)

val random_dag : Prng.t -> n:int -> edge_prob:float -> Digraph.t
(** Random DAG: for [i < j], edge [i → j] with probability [edge_prob]. *)

val random_connected : Prng.t -> n:int -> extra_edges:int -> Digraph.t
(** A random undirected-connected communication graph: a random spanning
    tree (both edge directions) plus [extra_edges] random additional
    directed edges. *)
