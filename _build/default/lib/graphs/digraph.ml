type t = {
  n : int;
  out : int array array;
  inn : int array array;
}

let sort_dedup lst =
  let a = Array.of_list lst in
  Array.sort compare a;
  let out = ref [] in
  Array.iter
    (fun x -> match !out with y :: _ when y = x -> () | _ -> out := x :: !out)
    a;
  Array.of_list (List.rev !out)

let create ~n edges =
  if n < 0 then invalid_arg "Digraph.create: negative node count";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Digraph.create: edge endpoint out of range";
      if u = v then invalid_arg "Digraph.create: self-loop")
    edges;
  let out_lists = Array.make n [] in
  let in_lists = Array.make n [] in
  List.iter
    (fun (u, v) ->
      out_lists.(u) <- v :: out_lists.(u);
      in_lists.(v) <- u :: in_lists.(v))
    edges;
  { n; out = Array.map sort_dedup out_lists; inn = Array.map sort_dedup in_lists }

let n t = t.n

let edge_count t = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.out

let edges t =
  let out = Array.make (edge_count t) (0, 0) in
  let k = ref 0 in
  for u = 0 to t.n - 1 do
    Array.iter
      (fun v ->
        out.(!k) <- (u, v);
        incr k)
      t.out.(u)
  done;
  out

let mem_edge t u v =
  if u < 0 || u >= t.n then false
  else begin
    let a = t.out.(u) in
    let lo = ref 0 and hi = ref (Array.length a - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) = v then found := true
      else if a.(mid) < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let out_neighbors t u = t.out.(u)
let in_neighbors t u = t.inn.(u)
let out_degree t u = Array.length t.out.(u)
let in_degree t u = Array.length t.inn.(u)

let undirected_neighbors t u =
  sort_dedup (Array.to_list t.out.(u) @ Array.to_list t.inn.(u))

let undirected_degree t u = Array.length (undirected_neighbors t u)

let topological_order t =
  let indeg = Array.init t.n (fun v -> in_degree t v) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Array.make t.n 0 in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!k) <- v;
    incr k;
    Array.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      t.out.(v)
  done;
  if !k = t.n then Some order else None

let is_dag t = topological_order t <> None

let longest_path_witness t ~weight =
  match topological_order t with
  | None -> invalid_arg "Digraph.longest_path: graph has a cycle"
  | Some order ->
      (* dist.(v) = best path cost ending at v; the empty path is allowed. *)
      let dist = Array.make t.n 0.0 in
      let pred = Array.make t.n (-1) in
      Array.iter
        (fun u ->
          Array.iter
            (fun v ->
              let cand = dist.(u) +. weight u v in
              if cand > dist.(v) then begin
                dist.(v) <- cand;
                pred.(v) <- u
              end)
            t.out.(u))
        order;
      let best = ref 0 and bestv = ref 0.0 in
      for v = 0 to t.n - 1 do
        if dist.(v) > !bestv then begin
          bestv := dist.(v);
          best := v
        end
      done;
      if t.n = 0 then (0.0, [])
      else begin
        let rec walk v acc = if v = -1 then acc else walk pred.(v) (v :: acc) in
        (!bestv, walk !best [])
      end

let longest_path t ~weight = fst (longest_path_witness t ~weight)

let map_nodes t f ~n:m =
  let remapped =
    Array.to_list (edges t) |> List.map (fun (u, v) -> (f u, f v))
  in
  create ~n:m remapped

let transpose t =
  create ~n:t.n (Array.to_list (edges t) |> List.map (fun (u, v) -> (v, u)))

let is_connected_undirected t =
  if t.n <= 1 then true
  else begin
    let seen = Array.make t.n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let count = ref 1 in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
          stack := rest;
          Array.iter
            (fun w ->
              if not seen.(w) then begin
                seen.(w) <- true;
                incr count;
                stack := w :: !stack
              end)
            (undirected_neighbors t v)
    done;
    !count = t.n
  end

let pp fmt t =
  Format.fprintf fmt "digraph(n=%d, edges=[" t.n;
  Array.iter (fun (u, v) -> Format.fprintf fmt "%d->%d;" u v) (edges t);
  Format.fprintf fmt "])"
