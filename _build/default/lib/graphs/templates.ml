let both u v = [ (u, v); (v, u) ]

let mesh2d ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Templates.mesh2d: dims must be positive";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := both (id r c) (id r (c + 1)) @ !edges;
      if r + 1 < rows then edges := both (id r c) (id (r + 1) c) @ !edges
    done
  done;
  Digraph.create ~n:(rows * cols) !edges

let mesh3d ~nx ~ny ~nz =
  if nx <= 0 || ny <= 0 || nz <= 0 then invalid_arg "Templates.mesh3d: dims must be positive";
  let id x y z = (((x * ny) + y) * nz) + z in
  let edges = ref [] in
  for x = 0 to nx - 1 do
    for y = 0 to ny - 1 do
      for z = 0 to nz - 1 do
        if x + 1 < nx then edges := both (id x y z) (id (x + 1) y z) @ !edges;
        if y + 1 < ny then edges := both (id x y z) (id x (y + 1) z) @ !edges;
        if z + 1 < nz then edges := both (id x y z) (id x y (z + 1)) @ !edges
      done
    done
  done;
  Digraph.create ~n:(nx * ny * nz) !edges

let torus2d ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Templates.torus2d: dims must be >= 3";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := both (id r c) (id r ((c + 1) mod cols)) @ !edges;
      edges := both (id r c) (id ((r + 1) mod rows) c) @ !edges
    done
  done;
  Digraph.create ~n:(rows * cols) !edges

let aggregation_tree ~fanout ~depth =
  if fanout <= 0 then invalid_arg "Templates.aggregation_tree: fanout must be positive";
  if depth < 0 then invalid_arg "Templates.aggregation_tree: depth must be non-negative";
  (* Breadth-first numbering: node 0 is the root; each internal node at
     index i has children fanout*i + 1 .. fanout*i + fanout. *)
  let rec count_nodes d = if d = 0 then 1 else 1 + (fanout * count_nodes (d - 1)) in
  (* count_nodes computes 1 + f + f^2 + ... + f^depth via Horner. *)
  let n = count_nodes depth in
  let edges = ref [] in
  let internal_count = if depth = 0 then 0 else count_nodes (depth - 1) in
  for i = 0 to internal_count - 1 do
    for c = 1 to fanout do
      let child = (fanout * i) + c in
      if child < n then edges := (child, i) :: !edges
    done
  done;
  Digraph.create ~n !edges

let bipartite ~front_ends ~storage =
  if front_ends <= 0 || storage <= 0 then
    invalid_arg "Templates.bipartite: both sides must be non-empty";
  let edges = ref [] in
  for f = 0 to front_ends - 1 do
    for s = 0 to storage - 1 do
      edges := (f, front_ends + s) :: !edges
    done
  done;
  Digraph.create ~n:(front_ends + storage) !edges

let ring ~n =
  if n < 3 then invalid_arg "Templates.ring: need n >= 3";
  Digraph.create ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let star ~n =
  if n < 1 then invalid_arg "Templates.star: need n >= 1";
  Digraph.create ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let hypercube ~dims =
  if dims < 0 || dims > 20 then invalid_arg "Templates.hypercube: dims out of range";
  let n = 1 lsl dims in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to dims - 1 do
      let w = v lxor (1 lsl b) in
      if v < w then edges := both v w @ !edges
    done
  done;
  Digraph.create ~n !edges

let random_dag rng ~n ~edge_prob =
  if n < 0 then invalid_arg "Templates.random_dag: negative n";
  if edge_prob < 0.0 || edge_prob > 1.0 then
    invalid_arg "Templates.random_dag: edge_prob out of [0,1]";
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.uniform rng < edge_prob then edges := (i, j) :: !edges
    done
  done;
  Digraph.create ~n !edges

let random_connected rng ~n ~extra_edges =
  if n <= 0 then invalid_arg "Templates.random_connected: need n >= 1";
  if extra_edges < 0 then invalid_arg "Templates.random_connected: negative extra_edges";
  let order = Prng.permutation rng n in
  let edges = ref [] in
  (* Random spanning tree: attach each node (in random order) to a random
     earlier node. *)
  for i = 1 to n - 1 do
    let parent = order.(Prng.int rng i) in
    edges := both order.(i) parent @ !edges
  done;
  let added = ref 0 and attempts = ref 0 in
  let g = ref (Digraph.create ~n !edges) in
  while !added < extra_edges && !attempts < extra_edges * 20 do
    incr attempts;
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (Digraph.mem_edge !g u v) then begin
      edges := (u, v) :: !edges;
      g := Digraph.create ~n !edges;
      incr added
    end
  done;
  !g
