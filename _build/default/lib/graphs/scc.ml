(* Iterative Tarjan to avoid stack overflow on large value graphs. *)
let tarjan ~n ~succ =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Explicit DFS state: (node, next-child position). *)
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      let call_stack = ref [ (root, ref 0) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !call_stack <> [] do
        match !call_stack with
        | [] -> ()
        | (v, pos) :: rest ->
            let children = succ v in
            if !pos < Array.length children then begin
              let w = children.(!pos) in
              incr pos;
              if index.(w) = -1 then begin
                index.(w) <- !next_index;
                lowlink.(w) <- !next_index;
                incr next_index;
                stack := w :: !stack;
                on_stack.(w) <- true;
                call_stack := (w, ref 0) :: !call_stack
              end
              else if on_stack.(w) then
                lowlink.(v) <- min lowlink.(v) index.(w)
            end
            else begin
              call_stack := rest;
              (match rest with
              | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then begin
                (* Pop the component rooted at v. *)
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> continue := false
                  | w :: tl ->
                      stack := tl;
                      on_stack.(w) <- false;
                      comp.(w) <- !next_comp;
                      if w = v then continue := false
                done;
                incr next_comp
              end
            end
      done
    end
  done;
  comp

let count comp =
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 comp
