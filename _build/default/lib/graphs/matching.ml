type t = {
  size : int;
  pair_left : int array;
  pair_right : int array;
}

let inf = max_int

let maximum ~n_left ~n_right ~adj =
  if Array.length adj <> n_left then invalid_arg "Matching.maximum: adj length";
  let pair_left = Array.make n_left (-1) in
  let pair_right = Array.make n_right (-1) in
  let dist = Array.make n_left inf in
  let queue = Queue.create () in
  (* BFS phase: layer the graph from free left vertices. Returns true if an
     augmenting path exists. *)
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for u = 0 to n_left - 1 do
      if pair_left.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- inf
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun v ->
          let u' = pair_right.(v) in
          if u' = -1 then found := true
          else if dist.(u') = inf then begin
            dist.(u') <- dist.(u) + 1;
            Queue.add u' queue
          end)
        adj.(u)
    done;
    !found
  in
  (* DFS phase: find vertex-disjoint shortest augmenting paths. *)
  let rec dfs u =
    let found = ref false in
    let i = ref 0 in
    let a = adj.(u) in
    while (not !found) && !i < Array.length a do
      let v = a.(!i) in
      incr i;
      let u' = pair_right.(v) in
      if u' = -1 || (dist.(u') = dist.(u) + 1 && dfs u') then begin
        pair_left.(u) <- v;
        pair_right.(v) <- u;
        found := true
      end
    done;
    if not !found then dist.(u) <- inf;
    !found
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to n_left - 1 do
      if pair_left.(u) = -1 && dfs u then incr size
    done
  done;
  { size = !size; pair_left; pair_right }

let is_perfect_left t = Array.for_all (fun v -> v <> -1) t.pair_left
