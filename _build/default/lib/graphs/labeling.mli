(** Degree-based compatibility labeling for subgraph isomorphism.

    Sect. 4.2: "we define a labeling based on in- and out-degree, as well as
    information about the labels of neighboring nodes. This labeling
    establishes a partial order on the nodes and expresses compatibility
    between them" (following Zampelli, Deville & Solnon, Constraints 2010).

    A pattern node [p] can only be mapped onto a target node [t] if [t]'s
    label dominates [p]'s: the target must have at least the in-degree and
    out-degree of the pattern node, and — iterating one level — the
    multiset of its neighbors' degrees must dominate the pattern node's
    neighbor-degree multiset. Filtering target domains with this test prunes
    the CP search tree at the root. *)

type label
(** The (iterated-degree) label of one node. *)

val compute : Digraph.t -> label array
(** Per-node labels after one round of neighborhood refinement. *)

val compatible : pattern:label -> target:label -> bool
(** [compatible ~pattern ~target] is true iff a node labeled [pattern] can
    be mapped onto a node labeled [target] in some subgraph isomorphism
    (necessary condition; sound to prune when false). *)

val compatibility_matrix : pattern:Digraph.t -> target:Digraph.t -> bool array array
(** [m.(p).(t)] is true iff pattern node [p] may map onto target node [t]
    according to the labels. *)
