(** Strongly connected components (Tarjan's algorithm, iterative).

    Used by the alldifferent propagator: after a maximum matching is found,
    edges within one SCC of the residual value graph belong to some maximum
    matching and must not be pruned (Régin 1994). *)

val tarjan : n:int -> succ:(int -> int array) -> int array
(** [tarjan ~n ~succ] returns an array mapping each node to the index of its
    strongly connected component. Component indices are dense in \[0, k). *)

val count : int array -> int
(** Number of distinct components in a component-index array. *)
