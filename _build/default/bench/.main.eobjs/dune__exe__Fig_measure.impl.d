bench/fig_measure.ml: Array Cloudsim Float List Netmeasure Printf Prng Stats Util
