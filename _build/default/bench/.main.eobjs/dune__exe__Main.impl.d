bench/main.ml: Array Fig_cloud Fig_e2e Fig_ext Fig_light Fig_measure Fig_solver List Micro Printf Sys Unix
