bench/fig_ext.ml: Array Cloudia Cloudsim Float Graphs Hashtbl List Netmeasure Printf Prng Stats Unix Util Workloads
