bench/micro.ml: Analyze Array Bechamel Benchmark Cloudia Cp Graphs Hashtbl Instance List Lp Measure Printf Prng Staged Stats Test Time Toolkit Util
