bench/fig_e2e.ml: Array Cloudia Cloudsim Graphs List Printf Prng Stats Util Workloads
