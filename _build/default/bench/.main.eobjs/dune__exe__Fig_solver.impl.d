bench/fig_solver.ml: Cloudia Cloudsim Graphs List Printf Prng String Unix Util
