bench/fig_cloud.ml: Array Cloudsim Float Printf Prng Seq Stats String Util
