bench/main.mli:
