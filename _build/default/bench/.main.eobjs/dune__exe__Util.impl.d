bench/util.ml: Array Cloudia Cloudsim Filename List Out_channel Printf Prng Stats String Sys
