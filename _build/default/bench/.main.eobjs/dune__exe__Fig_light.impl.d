bench/fig_light.ml: Cloudia Float Graphs Hashtbl List Printf Prng Util
