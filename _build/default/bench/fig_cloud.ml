(* Figures 1, 2, 18, 19, 20, 21: latency heterogeneity CDFs and mean-latency
   stability time series for the three provider presets. *)

let heterogeneity id provider_name count paper_note =
  Util.section id
    (Printf.sprintf "latency heterogeneity in %s"
       (Cloudsim.Provider.to_string provider_name));
  Printf.printf "paper: %s\n\n" paper_note;
  let env = Util.env_of (Util.provider provider_name) ~count in
  let means = Util.link_means env in
  let csv =
    String.lowercase_ascii id
    |> String.to_seq
    |> Seq.filter (fun c -> c <> '.' && c <> ' ')
    |> String.of_seq
  in
  Util.print_cdf ~csv (Printf.sprintf "pairwise mean latency, %d instances" count) means;
  let cdf = Stats.Cdf.of_samples means in
  Printf.printf "\n  p05 = %.3f ms, p10 = %.3f ms, p90 = %.3f ms, p95 = %.3f ms\n"
    (Stats.Cdf.inverse cdf 0.05) (Stats.Cdf.inverse cdf 0.10)
    (Stats.Cdf.inverse cdf 0.90) (Stats.Cdf.inverse cdf 0.95)

let stability id provider_name ~buckets ~bucket_hours paper_note =
  Util.section id
    (Printf.sprintf "mean latency stability in %s"
       (Cloudsim.Provider.to_string provider_name));
  Printf.printf "paper: %s\n\n" paper_note;
  let env = Util.env_of (Util.provider provider_name) ~count:20 in
  let rng = Prng.create 7 in
  Printf.printf "%d buckets of %.0f h; four representative links:\n" buckets bucket_hours;
  Printf.printf "  %-10s %10s %14s %10s %10s\n" "link" "true mean" "observed mean" "sd" "max jump";
  for link = 0 to 3 do
    let i = link and j = link + 10 in
    let series = Cloudsim.Env.time_series rng env i j ~buckets in
    let max_jump = ref 0.0 in
    Array.iteri
      (fun k v -> if k > 0 then max_jump := Float.max !max_jump (Float.abs (v -. series.(k - 1))))
      series;
    Printf.printf "  link %d     %7.3f ms %11.3f ms %7.3f ms %7.3f ms\n" (link + 1)
      (Cloudsim.Env.mean_latency env i j)
      (Stats.Summary.mean series) (Stats.Summary.stddev series) !max_jump
  done;
  Printf.printf "\n  (sd well below the spread across links: means are stable,\n";
  Printf.printf "   so a deployment chosen from measured means stays good)\n"

let fig1 () =
  heterogeneity "Fig. 1" Cloudsim.Provider.Ec2 100
    "100 EC2 m1.large: ~10% of pairs above 0.7 ms, bottom ~10% below 0.4 ms"

let fig2 () =
  stability "Fig. 2" Cloudsim.Provider.Ec2 ~buckets:100 ~bucket_hours:2.0
    "4 links over 200 h averaged every 2 h: stable per-link means"

let fig18 () =
  heterogeneity "Fig. 18" Cloudsim.Provider.Gce 50
    "50 GCE n1-standard-1: ~5% of pairs below 0.32 ms, top ~5% above 0.5 ms"

let fig19 () =
  stability "Fig. 19" Cloudsim.Provider.Gce ~buckets:60 ~bucket_hours:1.0
    "4 links over 60 h: stable means, smaller heterogeneity than EC2"

let fig20 () =
  heterogeneity "Fig. 20" Cloudsim.Provider.Rackspace 50
    "50 Rackspace performance 1-1: ~5% below 0.24 ms, top ~5% above 0.38 ms"

let fig21 () =
  stability "Fig. 21" Cloudsim.Provider.Rackspace ~buckets:60 ~bucket_hours:1.0
    "4 links over 60 h: effects in line with GCE"
